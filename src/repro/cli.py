"""Command-line interface.

Four subcommands cover the common workflows without writing Python:

* ``repro trace`` — generate a synthetic trace (optionally write SWF) and
  print its Table 1-style summary,
* ``repro run`` — replay a trace (synthetic or SWF) under the portfolio
  scheduler or a single fixed policy,
* ``repro figure`` — regenerate one of the paper's tables/figures,
* ``repro campaign`` — run a figure grid as independent cells, optionally
  fanned out over worker processes and memoised in a disk cache,
* ``repro trace-report`` — summarise a JSONL run trace written by
  ``repro run --trace-out`` (policy timeline, Δ accounting, top spans),
* ``repro chaos`` — turn environment faults against the platform itself:
  ``chaos run`` replays a trace with a seeded fault plan injected into
  the snapshot/tracer/cache/pool write paths, ``chaos soak`` loops
  kill → corrupt → resume cycles under strict audit and diffs the final
  export against an unfaulted reference,
* ``repro service`` — the long-running multi-tenant scheduler service:
  ``service run`` serves the unix-socket API until drained, ``service
  loadgen`` replays seeded synthetic tenants against it (and can spawn
  its own service), ``service replay`` reconstructs the canonical state
  from a journal,
* ``repro doctor`` — environment sanity checks (writable dirs, fsync,
  spawn pool, unix sockets, free space) with one-line verdicts,
* ``repro policies`` — list the 60 portfolio members.

Exit codes are centralised in :mod:`repro.exit_codes` (README has the
table).

Invoke as ``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import signal as _signal_mod
import sys
from typing import Sequence

from repro.exit_codes import (
    EX_AUDIT_VIOLATION,
    EX_FAILURE,
    EX_OK,
    EX_USAGE,
    signal_exit,
)
from repro.experiments.engine import EngineConfig
from repro.metrics.report import format_table
from repro.parallel.campaign import CAMPAIGN_FIGURES
from repro.policies.combined import build_portfolio, policy_by_name
from repro.predict.knn import KnnPredictor
from repro.predict.simple import OraclePredictor, UserEstimatePredictor
from repro.sim.clock import VirtualCostClock
from repro.workload.cleaning import clean_jobs
from repro.workload.job import Job
from repro.workload.stats import summarize_trace
from repro.workload.swf import parse_swf_file, write_swf
from repro.workload.synthetic import TRACES, generate_trace

__all__ = ["main", "build_parser"]

_TRACES = {spec.name: spec for spec in TRACES}
_FIGURES = (
    "table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
)


# -- argument validation ------------------------------------------------------
#
# Range errors surface as argparse usage errors at parse time instead of
# deep-in-run failures (a negative MTBF, say, would otherwise blow up in
# the failure sampler hours into a long run).

def _number(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    if not math.isfinite(value):
        raise argparse.ArgumentTypeError(f"{text!r} is not finite")
    return value


def _positive_float(text: str) -> float:
    value = _number(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {text}")
    return value


def _nonneg_float(text: str) -> float:
    value = _number(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text}")
    return value


def _nonneg_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _rate(text: str) -> float:
    value = _number(text)
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"must be a probability in [0, 1], got {text}"
        )
    return value


def _int_at_least(minimum: int):
    def parse(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{text!r} is not an integer"
            ) from None
        if value < minimum:
            raise argparse.ArgumentTypeError(f"must be >= {minimum}, got {text}")
        return value

    return parse


_positive_int = _int_at_least(1)
_nonneg_int = _int_at_least(0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Portfolio scheduling for scientific workloads in IaaS "
        "clouds (SC'13 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_trace = sub.add_parser("trace", help="generate and summarise a synthetic trace")
    p_trace.add_argument("model", choices=sorted(_TRACES))
    p_trace.add_argument("--hours", type=_positive_float, default=24.0)
    p_trace.add_argument("--seed", type=int, default=42)
    p_trace.add_argument("--swf-out", metavar="PATH", help="also write the trace as SWF")

    p_run = sub.add_parser("run", help="replay a trace under a scheduler")
    source = p_run.add_mutually_exclusive_group(required=True)
    source.add_argument("--model", choices=sorted(_TRACES))
    source.add_argument("--swf", metavar="PATH", help="Standard Workload Format file")
    source.add_argument(
        "--resume", action="store_true",
        help="continue the run snapshotted in --snapshot-dir (trace, policy "
        "and fault options are restored from the snapshot and need not be "
        "repeated)",
    )
    p_run.add_argument("--hours", type=_positive_float, default=24.0)
    p_run.add_argument("--seed", type=int, default=42)
    p_run.add_argument(
        "--policy",
        default="portfolio",
        help="'portfolio' (default) or a fixed policy name like ODX-UNICEF-FirstFit",
    )
    p_run.add_argument(
        "--predictor", choices=("oracle", "knn", "user"), default="oracle"
    )
    p_run.add_argument("--max-vms", type=_positive_int, default=256)
    p_run.add_argument("--system-procs", type=_positive_int, default=128,
                       help="source system size for SWF cleaning")

    chaos = p_run.add_argument_group(
        "fault injection & resilience",
        "unreliable-cloud extension: all knobs off reproduces the paper's "
        "reliable-VM model; every fault stream is deterministic per --seed",
    )
    chaos.add_argument("--mtbf", type=_positive_float, metavar="SECONDS",
                       help="mean exponential VM lifetime (VM failure injection)")
    chaos.add_argument("--lease-fault-rate", type=_rate, default=0.0,
                       metavar="P", help="P[lease request fails transiently]")
    chaos.add_argument("--partial-grant-rate", type=_rate, default=0.0,
                       metavar="P",
                       help="P[lease request only partially granted]")
    chaos.add_argument("--boot-fail-rate", type=_rate, default=0.0, metavar="P",
                       help="P[a leased VM never becomes ready]")
    chaos.add_argument("--boot-jitter", type=_nonneg_float, default=0.0,
                       metavar="SECONDS",
                       help="lognormal long-tail scale added to boot delays")
    chaos.add_argument("--outage-rate", type=_nonneg_float, default=0.0,
                       metavar="PER_DAY",
                       help="mean correlated outage windows per simulated day")
    chaos.add_argument("--outage-duration", type=_positive_float, default=900.0,
                       metavar="SECONDS", help="mean outage window length")
    chaos.add_argument("--outage-kill-fraction", type=_rate, default=0.5,
                       metavar="P",
                       help="P[each on-demand VM dies when an outage opens]")
    chaos.add_argument("--checkpoint-interval", type=_positive_float,
                       metavar="SECONDS",
                       help="periodic checkpointing: killed jobs resume from "
                       "their last checkpoint instead of restarting")
    chaos.add_argument("--max-job-retries", type=_nonneg_int, metavar="N",
                       help="kill budget per job before it ends FAILED "
                       "(default: unlimited)")

    spot = p_run.add_argument_group(
        "spot market & control-plane degradation",
        "hostile-cloud extension: a seeded spot price/preemption process "
        "plus API brownouts, rate limiting, and a provisioning circuit "
        "breaker; all knobs off reproduces the cooperative-cloud model "
        "bit-identically",
    )
    spot.add_argument("--spot-fraction", type=_rate, default=0.0, metavar="P",
                      help="fraction of each provisioning request leased as "
                      "preemptible spot VMs (0 disables the spot market)")
    spot.add_argument("--preempt-rate", type=_nonneg_float, default=0.05,
                      metavar="PER_HOUR",
                      help="mean spot reclaims per VM-hour")
    spot.add_argument("--spot-price", type=_rate, default=0.3, metavar="MEAN",
                      help="mean spot price as a fraction of on-demand")
    spot.add_argument("--spot-bid", type=_rate, default=1.0, metavar="BID",
                      help="default bid ceiling; spot leases are deferred "
                      "while the price exceeds it (policy members may "
                      "override per round)")
    spot.add_argument("--preempt-grace", type=_nonneg_float, default=120.0,
                      metavar="SECONDS",
                      help="notice window between VM_PREEMPT and the kill; "
                      "long enough windows fit an emergency checkpoint")
    spot.add_argument("--capacity-shortage-rate", type=_rate, default=0.0,
                      metavar="P",
                      help="P[spot capacity is exhausted in a price bucket] "
                      "(InsufficientCapacity; hedged to on-demand)")
    spot.add_argument("--brownout", type=_nonneg_float, default=0.0,
                      metavar="PER_DAY",
                      help="mean control-plane brownout windows per "
                      "simulated day (provisioning calls rejected)")
    spot.add_argument("--brownout-duration", type=_positive_float,
                      default=600.0, metavar="SECONDS",
                      help="mean brownout window length")
    spot.add_argument("--api-rate-limit", type=_positive_int, default=None,
                      metavar="N",
                      help="max provisioning calls per rolling window; "
                      "excess calls are throttled (feeds the breaker)")
    spot.add_argument("--api-rate-window", type=_positive_float,
                      default=60.0, metavar="SECONDS",
                      help="rolling window for --api-rate-limit")
    spot.add_argument("--breaker-threshold", type=_positive_int, default=3,
                      metavar="N",
                      help="consecutive control-plane failures that open "
                      "the provisioning circuit breaker")
    spot.add_argument("--breaker-cooldown", type=_positive_float,
                      default=300.0, metavar="SECONDS",
                      help="base cooldown before the open breaker admits a "
                      "half-open probe (decorrelated-jitter backoff)")
    spot.add_argument("--no-hedge", action="store_true",
                      help="do not fall back to on-demand when spot "
                      "capacity is short or the price exceeds the bid")
    spot.add_argument("--spot-policies", action="store_true",
                      help="extend the portfolio with the preemption-aware "
                      "family (bid-threshold provisioning, checkpoint-"
                      "interval tuning), arbitrated by Algorithm 1")

    durable = p_run.add_argument_group(
        "durability",
        "crash-safe execution: periodic atomic snapshots of full run state, "
        "snapshot-and-exit on SIGINT/SIGTERM, and --resume after a kill; a "
        "resumed run reproduces the uninterrupted result bit-identically",
    )
    durable.add_argument("--snapshot-dir", metavar="DIR",
                         help="directory for run-state snapshots (enables "
                         "durable execution)")
    durable.add_argument("--snapshot-interval", type=_positive_float,
                         metavar="SECONDS",
                         help="wall-clock seconds between snapshots "
                         "(default 300 when --snapshot-dir is set)")
    durable.add_argument("--snapshot-every-events", type=_positive_int,
                         metavar="N",
                         help="also snapshot every N simulation events "
                         "(deterministic trigger, used by tests/CI)")
    durable.add_argument("--export-json", metavar="PATH",
                         help="write the final result as JSON (resume-safe: "
                         "identical to the uninterrupted run's export)")

    failsafe = p_run.add_argument_group(
        "fail-safe portfolio evaluation",
        "a policy that raises during online simulation is quarantined "
        "(scored -inf, demoted to Poor) instead of aborting the run",
    )
    failsafe.add_argument("--quarantine-limit", type=_positive_int, metavar="N",
                          help="after N consecutive quarantined evaluations, "
                          "stop selecting and apply --safe-policy for the "
                          "rest of the run (default: never fail over)")
    failsafe.add_argument("--safe-policy", metavar="NAME",
                          help="fixed policy applied after quarantine "
                          "failover (default: first portfolio member)")

    auditing = p_run.add_argument_group(
        "self-verification",
        "runtime invariant auditing: an online monitor checks event "
        "delivery, VM lifecycle/billing, job conservation, and "
        "provider/queue consistency, and a differential oracle re-derives "
        "RJ/RV/BSD/U from an independent ledger at run end; 'off' is "
        "bit-identical to an unaudited run",
    )
    auditing.add_argument("--audit", choices=("off", "record", "warn", "strict"),
                          default=None,
                          help="severity: record silently, warn on stderr, or "
                          "strict (first violation aborts the run; exit 3); "
                          "ignored on --resume, which restores the snapshot's "
                          "audit config (default: off)")
    auditing.add_argument("--audit-report", action="store_true",
                          help="print the audit summary and oracle tables "
                          "after the run")

    kernel = p_run.add_argument_group(
        "simulation kernel",
        "online-simulator implementation used for Algorithm 1's policy "
        "evaluations; 'fast' (default) shares a warm-start prefix per "
        "round and runs slot/array-based policy arithmetic with "
        "bit-identical scoring; 'reference' keeps the historical "
        "per-step object scan as an escape hatch",
    )
    kernel.add_argument("--kernel", choices=("fast", "reference"),
                        default="fast",
                        help="online-simulator kernel (default: fast; "
                        "'reference' is bit-identical and ~3x slower)")

    parallel = p_run.add_argument_group(
        "parallel evaluation",
        "evaluate portfolio policies on worker processes; 0 (default) is "
        "the serial path, bit-identical to previous releases; with N > 0 "
        "the time constraint is charged in aggregate worker-seconds",
    )
    parallel.add_argument("--workers", type=_nonneg_int, default=0, metavar="N",
                          help="worker processes for Algorithm 1's policy "
                          "simulations (portfolio runs only)")
    parallel.add_argument("--worker-deadline", type=_positive_float,
                          metavar="SECONDS",
                          help="watchdog: SIGKILL and respawn the wave's "
                          "workers if one evaluation wave exceeds this many "
                          "wall-clock seconds (default: wait forever)")

    obs = p_run.add_argument_group(
        "observability",
        "structured run tracing and span profiling; with both off "
        "(default) the run is bit-identical to an uninstrumented build; "
        "on --resume the snapshot's tracer/profiler are restored and "
        "--trace-out/--profile are ignored",
    )
    obs.add_argument("--trace-out", metavar="PATH",
                     help="write one JSONL record per scheduler round (policy "
                     "scores, Δ accounting, Smart/Stale/Poor sets) plus VM "
                     "lifecycle and billing settlements; inspect with "
                     "'repro trace-report'")
    obs.add_argument("--profile", action="store_true",
                     help="time hot-path spans (kernel dispatch, Algorithm 1, "
                     "parallel waves) and print the top spans after the run")
    obs.add_argument("--prom-out", metavar="PATH",
                     help="write the final result as Prometheus text-format "
                     "metrics")

    alloc = p_run.add_argument_group(
        "fleet allocation",
        "fractional-fleet extension (repro.alloc): split the VM fleet "
        "across the top-k policies of each selection round with bounded "
        "weights instead of applying the argmax winner fleet-wide; "
        "--alloc-k 1 (default) reproduces the paper's scheduler "
        "bit-identically",
    )
    alloc.add_argument("--alloc-k", type=_positive_int, default=1, metavar="K",
                       help="how many top-ranked policies share the fleet "
                       "(1 = the paper's single-winner scheduler)")
    alloc.add_argument("--alloc-method", choices=("proportional", "softmax"),
                       default="proportional",
                       help="utility-score → weight mapping")
    alloc.add_argument("--alloc-temperature", type=_positive_float,
                       default=1.0, metavar="T",
                       help="softmax temperature: small T approaches argmax, "
                       "large T approaches equal weights")
    alloc.add_argument("--alloc-min-weight", type=_rate, default=0.0,
                       metavar="W", help="lower bound on each partition's "
                       "fleet fraction (widened to min(W, 1/k) when needed)")
    alloc.add_argument("--alloc-max-weight", type=_rate, default=1.0,
                       metavar="W", help="upper bound on each partition's "
                       "fleet fraction (widened to max(W, 1/k) when needed)")
    alloc.add_argument("--alloc-rebalance-threshold", type=_rate, default=0.0,
                       metavar="D",
                       help="hysteresis: hold the applied split unless the "
                       "new target drifts more than D (L∞) away from it")

    p_fig = sub.add_parser("figure", help="regenerate a paper table/figure")
    p_fig.add_argument("name", choices=_FIGURES)

    p_camp = sub.add_parser(
        "campaign",
        help="run a figure grid as independent cells, optionally in "
        "parallel and memoised in a disk cache",
    )
    p_camp.add_argument("figure", choices=sorted(CAMPAIGN_FIGURES))
    p_camp.add_argument("--workers", type=_nonneg_int, default=0, metavar="N",
                        help="worker processes for the cell fan-out "
                        "(0 = serial, bit-identical to the figure drivers)")
    p_camp.add_argument("--cell-cache", metavar="DIR",
                        help="content-addressed disk cache of completed "
                        "cells; re-runs only recompute what changed")
    p_camp.add_argument("--trace", action="append", choices=sorted(_TRACES),
                        metavar="MODEL",
                        help="restrict to this trace (repeatable; "
                        "default: all four)")
    p_camp.add_argument("--scale", type=_positive_float, default=None,
                        metavar="FACTOR",
                        help="scale the figure's simulated horizon (1.0 = "
                        "the drivers' default two days)")
    p_camp.add_argument("--export-json", metavar="PATH",
                        help="write the figure rows as JSON (identical for "
                        "serial and parallel runs)")

    p_chaos = sub.add_parser(
        "chaos",
        help="inject environment faults into the platform itself "
        "(snapshot writes, tracer flushes, cache puts, pool workers)",
    )
    chaos_sub = p_chaos.add_subparsers(dest="chaos_command", required=True)

    def chaos_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--model", choices=sorted(_TRACES), default="KTH-SP2")
        p.add_argument("--hours", type=_positive_float, default=2.0)
        p.add_argument("--seed", type=int, default=42,
                       help="trace seed (not the fault seed)")
        p.add_argument("--policy", default="portfolio",
                       help="'portfolio' (default) or a fixed policy name")
        p.add_argument("--plan", metavar="PATH",
                       help="JSON fault plan ({'seed': ..., 'rules': "
                       "[{'site': ..., 'action': ..., 'nth': ...}, ...]})")
        p.add_argument("--chaos-seed", type=int, default=None, metavar="N",
                       help="override the plan's fault-content seed")
        p.add_argument("--export-json", metavar="PATH",
                       help="write the chaos report as JSON")

    p_crun = chaos_sub.add_parser(
        "run",
        help="replay a trace (strictly audited, durable if --snapshot-dir "
        "is given) with the fault plan installed; reports every fault "
        "delivered",
    )
    chaos_common(p_crun)
    p_crun.add_argument("--snapshot-dir", metavar="DIR",
                        help="run durably, snapshotting into DIR")
    p_crun.add_argument("--snapshot-every-events", type=_positive_int,
                        default=2000, metavar="N",
                        help="snapshot cadence for --snapshot-dir")

    p_soak = chaos_sub.add_parser(
        "soak",
        help="loop kill -> corrupt-newest-snapshot -> resume cycles under "
        "strict audit; exit 0 only if the final export matches an "
        "unfaulted reference run",
    )
    chaos_common(p_soak)
    p_soak.add_argument("--cycles", type=_positive_int, default=3,
                        help="interrupt/corrupt/resume rounds")
    p_soak.add_argument("--every-events", type=_positive_int, default=500,
                        metavar="N", help="snapshot cadence during the soak")
    p_soak.add_argument("--dir", metavar="DIR",
                        help="snapshot directory (default: a temporary one)")

    p_report = sub.add_parser(
        "trace-report",
        help="summarise a JSONL run trace written by 'repro run --trace-out'",
    )
    p_report.add_argument("trace", metavar="PATH", help="the trace file")
    p_report.add_argument("--top-spans", type=_positive_int, default=5,
                          metavar="N", help="profiled spans to show")
    p_report.add_argument("--max-switches", type=_nonneg_int, default=40,
                          metavar="N",
                          help="policy-switch timeline rows to show")
    p_report.add_argument("--width", type=_positive_int, default=60,
                          metavar="CHARS", help="sparkline width")

    p_service = sub.add_parser(
        "service",
        help="the long-running multi-tenant scheduler service "
        "(journaled admissions, crash-consistent replay, graceful drain)",
    )
    service_sub = p_service.add_subparsers(dest="service_command", required=True)

    def service_state_flags(p: argparse.ArgumentParser) -> None:
        """Flags that shape the deterministic state machine — ``service
        replay`` must be invoked with the same values the server used."""
        p.add_argument("--max-vms", type=_positive_int, default=64,
                       help="shared provider cap all tenants compete under")
        p.add_argument("--round-step", type=_positive_float, default=20.0,
                       metavar="SECONDS",
                       help="virtual seconds per engine round (paper tick)")
        p.add_argument("--scheduler", default="portfolio",
                       help="'portfolio' (Algorithm 1 per tenant) or a fixed "
                       "policy name like ODX-UNICEF-FirstFit")
        p.add_argument("--selection-period", type=_positive_int, default=4,
                       metavar="ROUNDS", help="portfolio re-selection period")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--max-queued", type=_positive_int, default=None,
                       metavar="N", help="default tenant queue-depth budget")
        p.add_argument("--rate", type=_positive_float, default=None,
                       metavar="PER_ROUND",
                       help="default tenant token-bucket refill per round")
        p.add_argument("--burst", type=_positive_float, default=None,
                       metavar="N", help="default tenant token-bucket burst")
        p.add_argument("--vm-hours", type=_positive_float, default=None,
                       metavar="H", help="default tenant VM-hour budget "
                       "(charged at admission; default unlimited)")

    p_srun = service_sub.add_parser(
        "run", help="serve the unix-socket API until drained "
        "(SIGTERM/SIGINT or an API drain request; exits 4, or 5 with the "
        "kill switch engaged)",
    )
    p_srun.add_argument("--socket", required=True, metavar="PATH",
                        help="unix socket to listen on")
    p_srun.add_argument("--journal-dir", required=True, metavar="DIR",
                        help="append-only service journal (replayed on start)")
    p_srun.add_argument("--snapshot-dir", metavar="DIR",
                        help="snapshot store for fast restart (level 1 of "
                        "the recovery ladder)")
    p_srun.add_argument("--snapshot-every-rounds", type=_positive_int,
                        metavar="N", help="snapshot cadence, in rounds")
    p_srun.add_argument("--round-interval", type=_nonneg_float, default=0.5,
                        metavar="SECONDS",
                        help="wall seconds between automatic rounds "
                        "(0: rounds only on explicit {'op': 'round'})")
    p_srun.add_argument("--kill-switch", metavar="PATH",
                        help="while this file exists, provisioning halts "
                        "(admissions continue; journaled on toggle)")
    p_srun.add_argument("--max-tenants", type=_positive_int, default=1024)
    service_state_flags(p_srun)

    p_sload = service_sub.add_parser(
        "loadgen", help="replay seeded synthetic tenants against a service "
        "and report sustained submissions/sec and the shed breakdown",
    )
    target = p_sload.add_mutually_exclusive_group(required=True)
    target.add_argument("--socket", metavar="PATH",
                        help="socket of an already-running service")
    target.add_argument("--spawn", action="store_true",
                        help="spawn a private service child for the run "
                        "(drained afterwards)")
    p_sload.add_argument("--tenants", type=_positive_int, default=50)
    p_sload.add_argument("--jobs-per-tenant", type=_positive_int, default=20)
    p_sload.add_argument("--rounds-every", type=_nonneg_int, default=100,
                         metavar="N",
                         help="interleave one engine round per N submissions "
                         "(0: leave pacing to the service timer)")
    p_sload.add_argument("--hot", type=_nonneg_int, default=0, metavar="N",
                         help="first N tenants submit 4x the jobs "
                         "(the overload scenario)")
    p_sload.add_argument("--out", metavar="PATH",
                         help="write the report as JSON (BENCH_service.json)")
    service_state_flags(p_sload)

    p_sreplay = service_sub.add_parser(
        "replay", help="reconstruct the canonical service state from a "
        "journal (give the same state flags the server ran with)",
    )
    p_sreplay.add_argument("--journal-dir", required=True, metavar="DIR")
    p_sreplay.add_argument("--out", metavar="PATH",
                           help="write the state as JSON instead of stdout")
    service_state_flags(p_sreplay)

    p_doctor = sub.add_parser(
        "doctor", help="check this environment can host durable runs and "
        "the service (writable dirs, fsync, spawn pool, unix sockets)",
    )
    p_doctor.add_argument("--dir", metavar="PATH",
                          help="directory to probe (default: the temp dir); "
                          "point it at your journal/snapshot location")
    p_doctor.add_argument("--no-pool", action="store_true",
                          help="skip the spawn-context worker pool check "
                          "(slowest probe)")

    sub.add_parser("policies", help="list the 60 portfolio policies")
    return parser


def _predictor(name: str):
    return {"oracle": OraclePredictor, "knn": KnnPredictor,
            "user": UserEstimatePredictor}[name]()


def _cmd_trace(args: argparse.Namespace) -> int:
    spec = _TRACES[args.model]
    duration = args.hours * 3_600.0
    jobs = generate_trace(spec, duration, args.seed)
    if not jobs:
        print("trace is empty at this duration/seed", file=sys.stderr)
        return EX_FAILURE
    summary = summarize_trace(spec.name, jobs, spec.system_procs, span=duration)
    print(format_table([summary.row()], title=f"{spec.name} — {args.hours:g} h"))
    if args.swf_out:
        with open(args.swf_out, "w", encoding="utf-8") as fh:
            write_swf(jobs, fh, header=f"synthetic {spec.name} trace, seed {args.seed}")
        print(f"wrote {len(jobs)} jobs to {args.swf_out}")
    return EX_OK


def _load_jobs(args: argparse.Namespace) -> list[Job]:
    if args.model:
        spec = _TRACES[args.model]
        return generate_trace(spec, args.hours * 3_600.0, args.seed)
    raw = parse_swf_file(args.swf)
    jobs, report = clean_jobs(raw, system_procs=args.system_procs)
    print(f"cleaned SWF: kept {report.kept}/{report.total} jobs")
    return jobs


def _resilience_config(args: argparse.Namespace) -> dict:
    """EngineConfig kwargs for the fault/resilience CLI knobs."""
    from repro.cloud.failures import FailureModel
    from repro.resilience import CheckpointPolicy, FaultModel, RetryPolicy

    kwargs: dict = {}
    if args.mtbf is not None:
        kwargs["failures"] = FailureModel(mtbf_seconds=args.mtbf, seed=args.seed)
    fault_knobs = (
        args.lease_fault_rate or args.partial_grant_rate
        or args.boot_fail_rate or args.boot_jitter or args.outage_rate
    )
    if fault_knobs:
        kwargs["faults"] = FaultModel(
            seed=args.seed,
            lease_fault_rate=args.lease_fault_rate,
            partial_grant_rate=args.partial_grant_rate,
            boot_fail_rate=args.boot_fail_rate,
            boot_jitter_scale=args.boot_jitter,
            outage_mtbo_seconds=(86_400.0 / args.outage_rate
                                 if args.outage_rate else None),
            outage_duration_seconds=args.outage_duration,
            outage_kill_fraction=args.outage_kill_fraction,
        )
        # Faulty control planes deserve backoff, not tick-rate hammering.
        kwargs["lease_retry"] = RetryPolicy()
    if args.checkpoint_interval is not None:
        kwargs["checkpoint"] = CheckpointPolicy(args.checkpoint_interval)
    if args.max_job_retries is not None:
        kwargs["max_job_retries"] = args.max_job_retries
    return kwargs


def _spot_config(args: argparse.Namespace):
    """Build the SpotConfig for the hostile-cloud knobs, or None.

    The market switches on only when a knob with observable effect is
    raised (a spot fraction, a brownout rate, or an API rate limit);
    leaving everything at the defaults must construct the exact same
    EngineConfig as builds predating the spot layer.
    """
    active = (
        args.spot_fraction > 0.0
        or args.brownout > 0.0
        or args.api_rate_limit is not None
    )
    if not active:
        return None
    from repro.cloud.spot import SpotConfig

    return SpotConfig(
        seed=args.seed,
        spot_fraction=args.spot_fraction,
        price_mean=args.spot_price,
        preempt_rate_per_hour=args.preempt_rate,
        grace_period_seconds=args.preempt_grace,
        bid=args.spot_bid,
        capacity_shortage_rate=args.capacity_shortage_rate,
        brownout_mtbb_seconds=(86_400.0 / args.brownout
                               if args.brownout else None),
        brownout_duration_seconds=args.brownout_duration,
        api_rate_limit=args.api_rate_limit,
        api_rate_window_seconds=args.api_rate_window,
        hedge=not args.no_hedge,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_seconds=args.breaker_cooldown,
    )


def _alloc_config(args: argparse.Namespace):
    """Build the AllocConfig for the --alloc-* knobs, or None.

    ``--alloc-k 1`` (the default) returns None so the EngineConfig is
    the exact object builds predating the alloc layer construct — the
    bit-identical contract.  The config is still constructed first so
    cross-field validation (min > max, bad method) rejects bad values
    even at k=1.
    """
    from repro.alloc import AllocConfig

    try:
        cfg = AllocConfig(
            k=args.alloc_k,
            method=args.alloc_method,
            temperature=args.alloc_temperature,
            min_weight=args.alloc_min_weight,
            max_weight=args.alloc_max_weight,
            rebalance_threshold=args.alloc_rebalance_threshold,
            seed=args.seed,
        )
    except ValueError as exc:
        raise SystemExit2(f"--alloc-*: {exc}", EX_USAGE) from exc
    if cfg.k == 1:
        return None
    if args.policy != "portfolio":
        raise SystemExit2(
            "--alloc-k > 1 requires --policy portfolio: a fixed policy has "
            "no ranking to split the fleet over",
            EX_USAGE,
        )
    return cfg


def _snapshot_config(args: argparse.Namespace):
    """Build the SnapshotConfig for --snapshot-dir, or None."""
    if not args.snapshot_dir:
        return None
    from repro.durability import SnapshotConfig

    interval = args.snapshot_interval
    if interval is None and args.snapshot_every_events is None:
        interval = 300.0  # durable by default once a directory is given
    return SnapshotConfig(
        args.snapshot_dir,
        interval_seconds=interval,
        every_events=args.snapshot_every_events,
    )


class SystemExit2(Exception):
    """Carries (message, exit code) out of the engine builder."""

    def __init__(self, message: str, code: int) -> None:
        super().__init__(message)
        self.code = code


def _build_engine(args: argparse.Namespace):
    """Construct a fresh (never-started) engine from the run arguments."""
    from repro.cloud.provider import ProviderConfig
    from repro.core.scheduler import FixedScheduler, PortfolioScheduler
    from repro.experiments.engine import ClusterEngine

    jobs = _load_jobs(args)
    if not jobs:
        raise SystemExit2("no jobs to run", EX_FAILURE)
    audit_kwargs: dict = {}
    if args.audit is not None:
        from repro.audit import AuditConfig

        audit_kwargs["audit"] = AuditConfig(level=args.audit)
    obs_kwargs: dict = {}
    if args.trace_out:
        from repro.obs import TraceConfig

        obs_kwargs["trace"] = TraceConfig(path=args.trace_out)
    if args.profile:
        obs_kwargs["profile"] = True
    spot_kwargs: dict = {}
    spot_cfg = _spot_config(args)
    if spot_cfg is not None:
        spot_kwargs["spot"] = spot_cfg
    alloc_kwargs: dict = {}
    alloc_cfg = _alloc_config(args)
    if alloc_cfg is not None:
        alloc_kwargs["alloc"] = alloc_cfg
    config = EngineConfig(
        provider=ProviderConfig(max_vms=args.max_vms),
        **_resilience_config(args),
        **spot_kwargs,
        **alloc_kwargs,
        **audit_kwargs,
        **obs_kwargs,
    )
    predictor = _predictor(args.predictor)
    portfolio_kwargs: dict = {}
    if args.spot_policies:
        from repro.policies.spot_aware import spot_portfolio_members

        portfolio_kwargs["portfolio"] = (
            build_portfolio() + spot_portfolio_members()
        )
    if args.policy == "portfolio":
        try:
            scheduler = PortfolioScheduler(
                cost_clock=VirtualCostClock(0.010),
                seed=7,
                quarantine_limit=args.quarantine_limit,
                safe_policy=args.safe_policy,
                workers=args.workers,
                worker_deadline=args.worker_deadline,
                kernel=getattr(args, "kernel", "fast"),
                **portfolio_kwargs,
            )
        except KeyError as exc:
            raise SystemExit2(exc.args[0], EX_USAGE) from exc
    else:
        try:
            scheduler = FixedScheduler(policy_by_name(args.policy))
        except KeyError as exc:
            raise SystemExit2(exc.args[0], EX_USAGE) from exc
    return ClusterEngine(jobs, scheduler, predictor, config)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.audit import InvariantViolation
    from repro.durability import DurableRunner, RunInterrupted, SnapshotError

    snap_cfg = _snapshot_config(args)
    if args.resume and snap_cfg is None:
        print("--resume requires --snapshot-dir", file=sys.stderr)
        return EX_USAGE
    try:
        if args.resume:
            runner = DurableRunner.resume(snap_cfg)
            if runner.resumed_from.completed:
                print("snapshot marks the run completed; reporting its result")
        elif snap_cfg is not None:
            runner = DurableRunner(_build_engine(args), snap_cfg)
        else:
            runner = None
            result = _build_engine(args).run()
        if runner is not None:
            result = runner.run()
    except SystemExit2 as exc:
        print(str(exc), file=sys.stderr)
        return exc.code
    except InvariantViolation as exc:
        print(f"audit: {exc}", file=sys.stderr)
        return EX_AUDIT_VIOLATION
    except SnapshotError as exc:
        print(str(exc), file=sys.stderr)
        return EX_USAGE
    except RunInterrupted as exc:
        print(str(exc), file=sys.stderr)
        print(
            f"resume with: repro run --resume --snapshot-dir {args.snapshot_dir}",
            file=sys.stderr,
        )
        return signal_exit(exc.signum)

    recovery = getattr(runner, "recovery", None) if runner is not None else None
    if recovery is not None and recovery.fallback:
        print(
            f"recovery: newest snapshot was unusable; fell back to "
            f"generation {recovery.recovered_sequence} "
            f"({recovery.recovered}) after "
            f"{len(recovery.errors)} failed attempt(s)",
            file=sys.stderr,
        )
    is_portfolio = result.scheduler_desc.startswith("portfolio(")
    extra = {}
    if is_portfolio:
        extra["selections"] = result.portfolio_invocations
        extra["quarantined"] = result.policies_quarantined
    m = result.metrics
    row = {
        "scheduler": result.scheduler_desc,
        "jobs": m.jobs,
        "BSD": round(m.avg_bounded_slowdown, 3),
        "cost[VMh]": round(m.charged_hours, 1),
        "util": round(m.utilization, 3),
        "utility": round(result.utility, 3),
        **extra,
    }
    print(format_table([row], title="run result"))
    if result.portfolio_failed_over:
        print("portfolio failed over to its safe policy "
              f"after {result.policies_quarantined} quarantined evaluations")
    r9 = result.resilience
    if r9.any_activity or result.unfinished_jobs:
        row = {**r9.row(), "unfinished": result.unfinished_jobs}
        print(format_table([row], title="resilience"))
    spot_stats = getattr(result, "spot", None)
    if spot_stats is not None and spot_stats.any_activity:
        print(format_table([spot_stats.row()], title="spot market"))
    alloc_summary = getattr(result, "alloc", None)
    if alloc_summary is not None:
        reb = alloc_summary.get("rebalancer", {})
        applied = alloc_summary.get("applied") or {}
        split = ", ".join(f"{n}={w:.2f}" for n, w in applied.items())
        print(
            f"fleet allocation: k={alloc_summary['config']['k']} "
            f"({alloc_summary['config']['method']}), "
            f"{alloc_summary.get('rounds', 0)} partitioned rounds, "
            f"{reb.get('rebalances', 0)} rebalances, "
            f"{reb.get('holds', 0)} holds"
            + (f"; last split: {split}" if split else "")
        )
    report = getattr(result, "audit", None)
    if report is not None and (args.audit_report or not report.ok):
        print(format_table([report.summary_row()], title="audit"))
        if report.oracle_checks:
            print(format_table(report.oracle_rows(), title="differential oracle"))
        for violation in report.violations[:10]:
            print(f"violation [{violation.kind}] t={violation.time:.0f}: "
                  f"{violation.message}")
    profile = getattr(result, "profile", None)
    if profile and profile.get("spans"):
        ranked = sorted(
            profile["spans"].items(), key=lambda kv: -float(kv[1]["total"])
        )[:5]
        rows = [
            {
                "span": name,
                "calls": int(s["count"]),
                "total_s": round(float(s["total"]), 4),
                "max_ms": round(float(s["max"]) * 1e3, 3),
            }
            for name, s in ranked
        ]
        print(format_table(rows, title=f"top {len(rows)} spans by total time"))
    trace_summary = getattr(result, "trace", None)
    if trace_summary is not None and trace_summary.get("path"):
        print(
            f"trace: {trace_summary['records']} records -> "
            f"{trace_summary['path']} (inspect with 'repro trace-report')"
        )
    if args.prom_out:
        from repro.obs import prometheus_text

        with open(args.prom_out, "w", encoding="utf-8") as fh:
            fh.write(prometheus_text(result))
        print(f"wrote {args.prom_out}")
    if args.export_json:
        from repro.experiments.export import dump_result_json

        dump_result_json(result, args.export_json)
        print(f"wrote {args.export_json}")
    return EX_OK


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.obs import TraceReadError, read_trace, render_trace_report

    try:
        trace = read_trace(args.trace)
    except TraceReadError as exc:
        print(str(exc), file=sys.stderr)
        return EX_FAILURE
    print(
        render_trace_report(
            trace,
            source=args.trace,
            top_spans=args.top_spans,
            max_switches=args.max_switches,
            width=args.width,
        )
    )
    return EX_OK


def _cmd_figure(args: argparse.Namespace) -> int:
    import importlib

    module = importlib.import_module(f"repro.experiments.{args.name}")
    module.main()
    return EX_OK


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.experiments.compare import comparison_rows
    from repro.experiments.configs import DAY, DEFAULT_SCALE, ExperimentScale
    from repro.parallel import (
        Campaign,
        CampaignError,
        comparison_cells,
        install_results,
    )

    predictor = CAMPAIGN_FIGURES[args.figure]
    if args.scale is not None:
        scale = ExperimentScale(
            compare_duration=2 * DAY * args.scale,
            sweep_duration=DAY * args.scale,
        )
    else:
        scale = DEFAULT_SCALE
    if args.trace:
        wanted = set(args.trace)
        traces = [spec for spec in TRACES if spec.name in wanted]
    else:
        traces = list(TRACES)
    cells = comparison_cells(predictor, scale=scale, traces=traces)

    def progress(done: int, total: int, outcome) -> None:
        print(
            f"[{done}/{total}] {outcome.spec.describe()} ({outcome.source})",
            file=sys.stderr,
        )

    campaign = Campaign(
        cells,
        workers=args.workers,
        cell_cache=args.cell_cache,
        progress=progress,
    )
    try:
        outcomes = campaign.run()
    except CampaignError as exc:
        print(str(exc), file=sys.stderr)
        return EX_FAILURE
    except KeyboardInterrupt:
        if args.cell_cache:
            print(
                "interrupted; completed cells are in the cell cache — "
                "re-run the same command to resume",
                file=sys.stderr,
            )
        else:
            print("interrupted", file=sys.stderr)
        return signal_exit(_signal_mod.SIGINT)
    install_results(outcomes)
    rows = comparison_rows(predictor=predictor, scale=scale, traces=traces)
    print(
        format_table(
            rows,
            title=f"{args.figure} campaign — {predictor} runtimes, "
            f"{args.workers or 'no'} workers",
        )
    )
    ran = sum(1 for o in outcomes if o.source == "ran")
    print(
        f"{len(outcomes)} cells: {ran} computed, {len(outcomes) - ran} from cache",
        file=sys.stderr,
    )
    if args.export_json:
        import json

        with open(args.export_json, "w", encoding="utf-8") as fh:
            json.dump(
                {"figure": args.figure, "predictor": predictor, "rows": rows},
                fh,
                indent=2,
            )
            fh.write("\n")
        print(f"wrote {args.export_json}")
    return EX_OK


def _chaos_plan(args: argparse.Namespace):
    """The FaultPlan for a chaos subcommand (empty plan if no --plan)."""
    import dataclasses

    from repro.chaos import FaultPlan

    try:
        plan = FaultPlan.load(args.plan) if args.plan else FaultPlan()
    except ValueError as exc:
        raise SystemExit2(str(exc), EX_USAGE) from exc
    if args.chaos_seed is not None:
        plan = dataclasses.replace(plan, seed=args.chaos_seed)
    return plan


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    # The soak harness imports the engine stack; keep `import repro.chaos`
    # cheap by loading it only here.
    from repro.chaos import soak as soak_mod
    from repro.durability import DurableRunner, SnapshotConfig

    try:
        plan = _chaos_plan(args)
    except SystemExit2 as exc:
        print(str(exc), file=sys.stderr)
        return exc.code

    if args.chaos_command == "soak":
        spec = soak_mod.SoakSpec(
            model=args.model,
            hours=args.hours,
            seed=args.seed,
            policy=args.policy,
            cycles=args.cycles,
            every_events=args.every_events,
            chaos_seed=args.chaos_seed or 0,
            plan=plan if plan.rules else None,
        )
        report = soak_mod.run_soak(spec, args.dir)
        row = {
            "cycles": report.cycles,
            "corruptions": report.corruptions,
            "fallbacks": report.fallbacks,
            "plan faults": len(report.injected),
            "export identical": report.identical,
            "ok": report.ok,
        }
        print(format_table([row], title="chaos soak"))
        if args.export_json:
            with open(args.export_json, "w", encoding="utf-8") as fh:
                json.dump(report.to_dict(), fh, indent=2)
                fh.write("\n")
            print(f"wrote {args.export_json}")
        if not report.ok:
            print("soak FAILED: faulted run diverged from the unfaulted "
                  "reference", file=sys.stderr)
            return EX_FAILURE
        return EX_OK

    # chaos run: one strictly audited run with the plan installed.
    spec = soak_mod.SoakSpec(
        model=args.model, hours=args.hours, seed=args.seed, policy=args.policy
    )
    engine = soak_mod.build_engine(spec)
    injector = plan.injector()
    try:
        with injector:
            if args.snapshot_dir:
                runner = DurableRunner(
                    engine,
                    SnapshotConfig(
                        args.snapshot_dir,
                        interval_seconds=None,
                        every_events=args.snapshot_every_events,
                    ),
                )
                result = runner.run()
            else:
                result = engine.run()
    except OSError as exc:
        # An injected (or genuine) environment fault escaped a
        # non-degradable path, e.g. a snapshot write.
        print(f"run failed under environment fault: {exc}", file=sys.stderr)
        return EX_FAILURE
    m = result.metrics
    print(format_table(
        [{
            "scheduler": result.scheduler_desc,
            "jobs": m.jobs,
            "BSD": round(m.avg_bounded_slowdown, 3),
            "utility": round(result.utility, 3),
            "faults injected": len(injector.injected),
        }],
        title="chaos run",
    ))
    for site, action, count in injector.injected:
        print(f"  fault: {action} @ {site} (operation #{count})")
    if args.export_json:
        from repro.experiments.export import result_to_dict

        payload = {
            "plan": plan.to_dict(),
            "injected": [list(entry) for entry in injector.injected],
            "result": result_to_dict(result),
        }
        with open(args.export_json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.export_json}")
    return EX_OK


def _cmd_policies(_: argparse.Namespace) -> int:
    for policy in build_portfolio():
        print(policy.name)
    return EX_OK


def _service_budget(args: argparse.Namespace):
    """Default :class:`~repro.service.config.TenantBudget` from CLI flags."""
    from repro.service.config import DEFAULT_BUDGET, TenantBudget

    if (args.max_queued, args.rate, args.burst, args.vm_hours) == (None,) * 4:
        return DEFAULT_BUDGET
    return TenantBudget(
        max_queued_jobs=(
            args.max_queued if args.max_queued is not None
            else DEFAULT_BUDGET.max_queued_jobs
        ),
        max_vm_hours=(
            args.vm_hours if args.vm_hours is not None
            else DEFAULT_BUDGET.max_vm_hours
        ),
        rate_per_round=(
            args.rate if args.rate is not None else DEFAULT_BUDGET.rate_per_round
        ),
        burst=args.burst if args.burst is not None else DEFAULT_BUDGET.burst,
    )


def _service_config(args: argparse.Namespace, socket_path: str, journal_dir: str):
    from repro.service.config import ServiceConfig

    return ServiceConfig(
        socket_path=socket_path,
        journal_dir=journal_dir,
        snapshot_dir=getattr(args, "snapshot_dir", None),
        max_total_vms=args.max_vms,
        round_virtual_step=args.round_step,
        round_interval=getattr(args, "round_interval", 0.0),
        scheduler=args.scheduler,
        selection_period=args.selection_period,
        seed=args.seed,
        snapshot_every_rounds=getattr(args, "snapshot_every_rounds", None),
        kill_switch_path=getattr(args, "kill_switch", None),
        max_tenants=getattr(args, "max_tenants", 1024),
        default_budget=_service_budget(args),
    )


def _cmd_service_run(args: argparse.Namespace) -> int:
    from repro.service.server import run_service

    return run_service(_service_config(args, args.socket, args.journal_dir))


def _cmd_service_loadgen(args: argparse.Namespace) -> int:
    import subprocess
    import sys as _sys
    import tempfile

    from repro.service.loadgen import ServiceClient, run_loadgen

    budget = _service_budget(args).to_dict()

    def drive(socket_path: str) -> dict:
        return run_loadgen(
            socket_path,
            tenants=args.tenants,
            jobs_per_tenant=args.jobs_per_tenant,
            seed=args.seed,
            rounds_every=args.rounds_every,
            hot=args.hot,
            budget=budget,
        )

    if args.spawn:
        with tempfile.TemporaryDirectory(prefix="repro-loadgen-") as scratch:
            socket_path = os.path.join(scratch, "service.sock")
            child = subprocess.Popen(
                [
                    _sys.executable, "-m", "repro", "service", "run",
                    "--socket", socket_path,
                    "--journal-dir", os.path.join(scratch, "journal"),
                    "--round-interval", "0",
                    "--max-vms", str(args.max_vms),
                    "--round-step", str(args.round_step),
                    "--scheduler", args.scheduler,
                    "--selection-period", str(args.selection_period),
                    "--seed", str(args.seed),
                ],
            )
            try:
                report = drive(socket_path)
            finally:
                drainer = ServiceClient(socket_path)
                try:
                    drainer.connect(retries=5)
                    drainer.drain()
                except (OSError, ConnectionError):
                    child.terminate()
                finally:
                    drainer.close()
                child.wait(timeout=30.0)
            report["service_exit_code"] = child.returncode
    else:
        report = drive(args.socket)

    text = json.dumps(report, indent=2) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
        print(
            f"submitted={report['submitted']} accepted={report['accepted']} "
            f"shed={report['shed']} at {report['submissions_per_sec']} "
            "submissions/sec"
        )
    else:
        print(text, end="")
    return EX_OK


def _cmd_service_replay(args: argparse.Namespace) -> int:
    from repro.service.journal import JOURNAL_NAME, read_journal
    from repro.service.state import ServiceState

    journal_path = os.path.join(args.journal_dir, JOURNAL_NAME)
    if not os.path.exists(journal_path):
        print(f"repro service replay: no journal at {journal_path}",
              file=sys.stderr)
        return EX_FAILURE
    records, _ = read_journal(journal_path)
    # The socket path never enters the state machine; any placeholder
    # keeps replay independent of where the server listened.
    config = _service_config(args, "replayed.sock", args.journal_dir)
    state = ServiceState.replay(records, config)
    text = json.dumps(state.to_dict(), indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out} ({len(records)} records replayed)")
    else:
        print(text, end="")
    return EX_OK


def _cmd_service(args: argparse.Namespace) -> int:
    return {
        "run": _cmd_service_run,
        "loadgen": _cmd_service_loadgen,
        "replay": _cmd_service_replay,
    }[args.service_command](args)


def _cmd_doctor(args: argparse.Namespace) -> int:
    from repro.doctor import doctor_main

    return doctor_main(args.dir, pool=not args.no_pool)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "trace": _cmd_trace,
        "run": _cmd_run,
        "figure": _cmd_figure,
        "campaign": _cmd_campaign,
        "trace-report": _cmd_trace_report,
        "chaos": _cmd_chaos,
        "policies": _cmd_policies,
        "service": _cmd_service,
        "doctor": _cmd_doctor,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
