"""``repro doctor``: will this environment actually hold up?

Every failure mode checked here has bitten a real run: a read-only
snapshot directory discovered only at the first checkpoint, a container
without ``AF_UNIX``, a filesystem whose ``fsync`` lies, a spawn context
broken by a misconfigured entry point, a journal partition with no room
left.  The doctor reproduces each in seconds and prints one actionable
line per check, so operators run it *before* the service, not after the
postmortem.

Exit code: :data:`~repro.exit_codes.EX_OK` when everything passes,
:data:`~repro.exit_codes.EX_DOCTOR` otherwise.
"""

from __future__ import annotations

import os
import shutil
import socket
import tempfile
from dataclasses import dataclass
from pathlib import Path

__all__ = ["CheckResult", "run_checks", "doctor_main"]

#: Below this much free space the journal partition check fails.
MIN_FREE_BYTES = 50 * 1024 * 1024


@dataclass(slots=True, frozen=True)
class CheckResult:
    name: str
    ok: bool
    detail: str


def _pool_probe() -> int:  # pragma: no cover - runs in the worker child
    return 42


def _check_dir_writable(directory: Path) -> CheckResult:
    name = "dir-writable"
    try:
        directory.mkdir(parents=True, exist_ok=True)
        from repro.durability.snapshot import atomic_write

        probe = directory / ".repro-doctor-probe"
        atomic_write(probe, b"doctor\n", site="doctor.probe")
        probe.unlink()
    except OSError as exc:
        return CheckResult(
            name, False,
            f"cannot atomically write in {directory}: {exc} — "
            "fix permissions or point --dir at a writable path",
        )
    return CheckResult(name, True, f"atomic write + rename ok in {directory}")


def _check_fsync(directory: Path) -> CheckResult:
    name = "fsync"
    try:
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".repro-doctor-")
        try:
            os.write(fd, b"doctor\n")
            os.fsync(fd)
        finally:
            os.close(fd)
            os.unlink(tmp)
    except OSError as exc:
        return CheckResult(
            name, False,
            f"fsync failed in {directory}: {exc} — journals cannot be made "
            "durable here; use a local filesystem",
        )
    return CheckResult(name, True, "fsync works")


def _check_free_space(directory: Path) -> CheckResult:
    name = "free-space"
    try:
        usage = shutil.disk_usage(directory)
    except OSError as exc:  # pragma: no cover - exotic mounts
        return CheckResult(name, False, f"cannot stat {directory}: {exc}")
    if usage.free < MIN_FREE_BYTES:
        return CheckResult(
            name, False,
            f"only {usage.free // (1024 * 1024)} MB free at {directory} — the "
            "journal needs headroom; free space or point dirs elsewhere",
        )
    return CheckResult(
        name, True, f"{usage.free // (1024 * 1024)} MB free at {directory}"
    )


def _check_unix_socket(directory: Path) -> CheckResult:
    name = "unix-socket"
    if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
        return CheckResult(
            name, False,
            "AF_UNIX unsupported on this platform — the service API needs it",
        )
    path = directory / ".repro-doctor.sock"
    try:
        path.unlink(missing_ok=True)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.bind(str(path))
        finally:
            sock.close()
            path.unlink(missing_ok=True)
    except OSError as exc:
        return CheckResult(
            name, False,
            f"cannot bind a unix socket under {directory}: {exc} — put the "
            "socket on a local filesystem (not NFS/overlay quirks)",
        )
    return CheckResult(name, True, "unix sockets bindable")


def _check_spawn_pool() -> CheckResult:
    name = "spawn-pool"
    try:
        from repro.parallel.pool import WorkerPool

        pool = WorkerPool(1)
        try:
            result = pool.submit(_pool_probe).result(timeout=60.0)
        finally:
            pool.shutdown()
        if result != 42:  # pragma: no cover - would be a pickle bug
            return CheckResult(name, False, f"worker returned {result!r}, not 42")
    except Exception as exc:  # noqa: BLE001 - any failure is the finding
        return CheckResult(
            name, False,
            f"spawn-context worker failed: {exc} — check that 'repro' is "
            "importable from a fresh interpreter (PYTHONPATH, no __main__ "
            "side effects)",
        )
    return CheckResult(name, True, "spawn-context worker pool starts and runs")


def run_checks(directory: Path, pool: bool = True) -> list[CheckResult]:
    """Run every environment check against *directory*."""
    results = [
        _check_dir_writable(directory),
        _check_fsync(directory),
        _check_free_space(directory),
        _check_unix_socket(directory),
    ]
    if pool:
        results.append(_check_spawn_pool())
    return results


def doctor_main(directory: str | None = None, pool: bool = True) -> int:
    """CLI body: print one line per check, return the exit code."""
    from repro.exit_codes import EX_DOCTOR, EX_OK

    target = Path(directory) if directory else Path(tempfile.gettempdir())
    results = run_checks(target, pool=pool)
    for result in results:
        status = "ok  " if result.ok else "FAIL"
        print(f"doctor {status} {result.name}: {result.detail}")
    failed = [r for r in results if not r.ok]
    if failed:
        print(f"doctor: {len(failed)}/{len(results)} checks failed")
        return EX_DOCTOR
    print(f"doctor: all {len(results)} checks passed")
    return EX_OK
