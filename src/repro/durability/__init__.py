"""Crash-safe checkpoint/resume of experiment runs.

The paper's premise is *long-term* execution — months of simulated
workload per trace — so the runner itself must survive an unreliable
host.  This package provides:

* :class:`SnapshotStore` / :class:`SnapshotConfig` — atomic (temp file +
  fsync + rename), SHA-256-verified snapshots with a JSON manifest;
* :class:`RunState` / :class:`CompletedRun` — full-run-state capture
  (event heap, clock, fleet, billing anchors, RNG streams, portfolio
  sets, metrics) including the global event sequence counter;
* :class:`DurableRunner` — drives an engine in bounded event batches,
  snapshots on wall-clock/event-count triggers and on SIGINT/SIGTERM,
  and resumes a killed run to a bit-identical final result.

With no snapshot configuration the engine runs exactly as before; the
subsystem is pure opt-in.
"""

from repro.durability.runner import DurableRunner, RunInterrupted
from repro.durability.snapshot import (
    MANIFEST_NAME,
    SNAPSHOT_FORMAT,
    RecoveryReport,
    SnapshotConfig,
    SnapshotError,
    SnapshotInfo,
    SnapshotStore,
)
from repro.durability.state import CompletedRun, RunState

__all__ = [
    "DurableRunner",
    "RunInterrupted",
    "RecoveryReport",
    "SnapshotConfig",
    "SnapshotError",
    "SnapshotInfo",
    "SnapshotStore",
    "RunState",
    "CompletedRun",
    "MANIFEST_NAME",
    "SNAPSHOT_FORMAT",
]
