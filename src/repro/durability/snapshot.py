"""Atomic, integrity-checked snapshot storage.

The write protocol makes a crash at *any* instant recoverable:

1. pickle the state object to bytes and hash it (SHA-256);
2. write the payload to ``<name>.tmp``, ``fsync`` it, and rename it to
   its final name (atomic on POSIX);
3. write a small JSON manifest — sequence number, payload file name,
   checksum, simulation clock, event count — the same way: temp file,
   ``fsync``, rename over ``MANIFEST.json``;
4. best-effort ``fsync`` the directory so both renames are durable.

Because the manifest is replaced only *after* its payload is safely on
disk, the manifest always points at a complete, verifiable snapshot: a
kill mid-write leaves at worst an orphaned ``.tmp`` file and the previous
snapshot intact.  :func:`load_latest` re-hashes the payload before
unpickling and refuses anything that does not match.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

__all__ = [
    "SnapshotConfig",
    "SnapshotError",
    "SnapshotInfo",
    "SnapshotStore",
    "MANIFEST_NAME",
    "SNAPSHOT_FORMAT",
    "atomic_write",
]

MANIFEST_NAME = "MANIFEST.json"
#: Bump when the payload layout changes incompatibly.
#: 2: engines carry audit-monitor state (repro.audit); results grew an
#:    ``audit`` field.
SNAPSHOT_FORMAT = 2


class SnapshotError(RuntimeError):
    """A snapshot could not be written, found, or verified."""


@dataclass(slots=True, frozen=True)
class SnapshotConfig:
    """Where and how often run state is snapshotted.

    Parameters
    ----------
    directory:
        Snapshot directory (created on first write).
    interval_seconds:
        Wall-clock period between periodic snapshots; ``None`` disables
        the wall-clock trigger.
    every_events:
        Snapshot every N processed simulation events — deterministic
        across hosts, which is what tests and the CI kill/resume smoke
        job want.  ``None`` disables the event-count trigger.
    keep:
        How many verified snapshots to retain (≥ 1); older payloads are
        pruned after each successful write.
    """

    directory: str | Path
    interval_seconds: float | None = 300.0
    every_events: int | None = None
    keep: int = 2

    def __post_init__(self) -> None:
        if self.interval_seconds is not None and self.interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be positive, got {self.interval_seconds}"
            )
        if self.every_events is not None and self.every_events < 1:
            raise ValueError(
                f"every_events must be >= 1, got {self.every_events}"
            )
        if self.keep < 1:
            raise ValueError(f"keep must be >= 1, got {self.keep}")

    @property
    def path(self) -> Path:
        return Path(self.directory)


@dataclass(slots=True, frozen=True)
class SnapshotInfo:
    """Manifest metadata of one verified snapshot."""

    sequence: int
    payload: str
    sha256: str
    sim_time: float
    events_processed: int
    completed: bool

    @property
    def filename(self) -> str:
        return self.payload


def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write(path: Path, data: bytes) -> None:
    """Write *data* to *path* via temp file + fsync + rename.

    A crash at any instant leaves either the previous file or the new one,
    never a torn write (plus, at worst, an orphaned ``.tmp``).  Shared with
    the parallel subsystem's cell cache."""
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_dir(path.parent)


class SnapshotStore:
    """Reads and writes snapshots in one directory."""

    def __init__(self, config: SnapshotConfig) -> None:
        self.config = config
        self.directory = config.path

    # -- writing ------------------------------------------------------------

    def write(
        self,
        state: Any,
        sequence: int,
        sim_time: float,
        events_processed: int,
        completed: bool = False,
    ) -> SnapshotInfo:
        """Atomically persist *state* as snapshot number *sequence*."""
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()
        name = f"snap-{sequence:08d}.pkl"
        atomic_write(self.directory / name, payload)
        info = SnapshotInfo(
            sequence=sequence,
            payload=name,
            sha256=digest,
            sim_time=float(sim_time),
            events_processed=int(events_processed),
            completed=bool(completed),
        )
        manifest = {
            "format": SNAPSHOT_FORMAT,
            "sequence": info.sequence,
            "payload": info.payload,
            "sha256": info.sha256,
            "sim_time": info.sim_time,
            "events_processed": info.events_processed,
            "completed": info.completed,
        }
        atomic_write(
            self.directory / MANIFEST_NAME,
            (json.dumps(manifest, indent=2) + "\n").encode("utf-8"),
        )
        self._prune(current=info.sequence)
        return info

    def _prune(self, current: int) -> None:
        """Drop payloads older than the newest ``keep`` snapshots."""
        cutoff = current - self.config.keep + 1
        for path in self.directory.glob("snap-*.pkl"):
            try:
                seq = int(path.stem.split("-", 1)[1])
            except (IndexError, ValueError):  # pragma: no cover - foreign file
                continue
            if seq < cutoff:
                path.unlink(missing_ok=True)

    # -- reading ------------------------------------------------------------

    def manifest(self) -> SnapshotInfo:
        """Parse and validate the manifest; raise if absent or malformed."""
        path = self.directory / MANIFEST_NAME
        if not path.is_file():
            raise SnapshotError(f"no snapshot manifest at {path}")
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise SnapshotError(f"unreadable snapshot manifest {path}: {exc}") from exc
        if raw.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"snapshot format {raw.get('format')!r} is not supported "
                f"(expected {SNAPSHOT_FORMAT})"
            )
        try:
            return SnapshotInfo(
                sequence=int(raw["sequence"]),
                payload=str(raw["payload"]),
                sha256=str(raw["sha256"]),
                sim_time=float(raw["sim_time"]),
                events_processed=int(raw["events_processed"]),
                completed=bool(raw.get("completed", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"malformed snapshot manifest {path}: {exc}") from exc

    def load_latest(self) -> tuple[Any, SnapshotInfo]:
        """Load, verify, and unpickle the snapshot the manifest points at."""
        info = self.manifest()
        path = self.directory / info.payload
        if not path.is_file():
            raise SnapshotError(f"snapshot payload {path} is missing")
        payload = path.read_bytes()
        digest = hashlib.sha256(payload).hexdigest()
        if digest != info.sha256:
            raise SnapshotError(
                f"snapshot payload {path} fails its checksum "
                f"(expected {info.sha256}, got {digest}); refusing to resume"
            )
        try:
            state = pickle.loads(payload)
        except Exception as exc:
            raise SnapshotError(f"snapshot payload {path} failed to unpickle: {exc}") from exc
        return state, info
