"""Atomic, integrity-checked, multi-generation snapshot storage.

The write protocol makes a crash at *any* instant recoverable:

1. pickle the state object to bytes and hash it (SHA-256);
2. write the payload to ``<name>.tmp``, ``fsync`` it, and rename it to
   its final name (atomic on POSIX);
3. write a per-generation sidecar manifest (``snap-<seq>.meta.json`` —
   sequence number, payload file name, checksum, simulation clock, event
   count) the same way, so every retained generation stays independently
   verifiable;
4. write the top-level ``MANIFEST.json`` pointing at the new generation,
   again via temp file + ``fsync`` + rename;
5. prune generations outside the keep window, sweep orphaned ``.tmp``
   debris, and best-effort ``fsync`` the directory.

Because the manifest is replaced only *after* its payload is safely on
disk, the manifest always points at a complete, verifiable snapshot: a
kill mid-write leaves at worst an orphaned ``.tmp`` file and the previous
generations intact.

Recovery ladder
---------------
:meth:`SnapshotStore.load_latest` re-hashes the payload before
unpickling.  When the newest generation fails — corrupt manifest,
missing or checksum-failing payload, torn pickle — it does **not** give
up: it walks the retained generations newest-first (their sidecar
manifests carry the checksums) and restores the newest one that
verifies, recording what happened in a structured
:class:`RecoveryReport` (surfaced through the runner into the result
export).  Only when *every* retained generation fails does it raise a
:class:`SnapshotError` listing everything it tried.

Environment faults
------------------
:func:`atomic_write` exposes chaos fault points (``<site>.write`` /
``<site>.rename`` / ``<site>.written`` — see :mod:`repro.chaos`) so the
chaos layer can inject ``ENOSPC``, torn renames (real ``.tmp`` debris),
and byte-level corruption exactly where a hostile host would.  With no
injector installed the points are no-op global reads.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.chaos.hooks import TornRename, fault_point

__all__ = [
    "SnapshotConfig",
    "SnapshotError",
    "SnapshotInfo",
    "SnapshotStore",
    "RecoveryReport",
    "MANIFEST_NAME",
    "SNAPSHOT_FORMAT",
    "atomic_write",
]

MANIFEST_NAME = "MANIFEST.json"
#: Bump when the payload layout changes incompatibly.
#: 2: engines carry audit-monitor state (repro.audit); results grew an
#:    ``audit`` field.
#: 3: engines carry the hostile-cloud layer (spot market, breaker,
#:    preemption bookkeeping); results grew a ``spot`` field.  Format-2
#:    engines lack those attributes, so resuming one would crash
#:    mid-run — reject the manifest up front instead.
SNAPSHOT_FORMAT = 3


class SnapshotError(RuntimeError):
    """A snapshot could not be written, found, or verified."""


@dataclass(slots=True, frozen=True)
class SnapshotConfig:
    """Where and how often run state is snapshotted.

    Parameters
    ----------
    directory:
        Snapshot directory (created on first write).
    interval_seconds:
        Wall-clock period between periodic snapshots; ``None`` disables
        the wall-clock trigger.
    every_events:
        Snapshot every N processed simulation events — deterministic
        across hosts, which is what tests and the CI kill/resume smoke
        job want.  ``None`` disables the event-count trigger.
    keep:
        How many verified snapshots to retain (≥ 1); older payloads are
        pruned after each successful write.  With ``keep >= 2`` the
        recovery ladder can fall back past a corrupted newest generation.
    """

    directory: str | Path
    interval_seconds: float | None = 300.0
    every_events: int | None = None
    keep: int = 2

    def __post_init__(self) -> None:
        if self.interval_seconds is not None and self.interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be positive, got {self.interval_seconds}"
            )
        if self.every_events is not None and self.every_events < 1:
            raise ValueError(
                f"every_events must be >= 1, got {self.every_events}"
            )
        if self.keep < 1:
            raise ValueError(f"keep must be >= 1, got {self.keep}")

    @property
    def path(self) -> Path:
        return Path(self.directory)


@dataclass(slots=True, frozen=True)
class SnapshotInfo:
    """Manifest metadata of one verified snapshot."""

    sequence: int
    payload: str
    sha256: str
    sim_time: float
    events_processed: int
    completed: bool

    @property
    def filename(self) -> str:
        return self.payload


@dataclass(slots=True, frozen=True)
class RecoveryReport:
    """What :meth:`SnapshotStore.load_latest` had to do to find a
    loadable snapshot.

    ``fallback`` is True when the generation the manifest pointed at (or
    the manifest itself) was unusable and an older retained generation
    was restored instead.  ``tried`` lists every payload examined in
    order; ``errors`` carries one description per *failed* attempt.
    """

    requested: str | None  # what the manifest pointed at (None: unreadable)
    recovered: str  # payload actually restored
    recovered_sequence: int
    fallback: bool
    tried: tuple[str, ...]
    errors: tuple[str, ...]
    swept_tmp: int = 0

    def to_dict(self) -> dict:
        return {
            "requested": self.requested,
            "recovered": self.recovered,
            "recovered_sequence": self.recovered_sequence,
            "fallback": self.fallback,
            "tried": list(self.tried),
            "errors": list(self.errors),
            "swept_tmp": self.swept_tmp,
        }


def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write(path: Path, data: bytes, site: str = "fs") -> None:
    """Write *data* to *path* via temp file + fsync + rename.

    A crash at any instant leaves either the previous file or the new one,
    never a torn write (plus, at worst, an orphaned ``.tmp``).  Shared with
    the parallel subsystem's cell cache and the tracer's resume rewrite.

    *site* names the chaos fault points this write exposes
    (``<site>.write`` / ``<site>.rename`` / ``<site>.written``); an
    injected :class:`~repro.chaos.hooks.TornRename` leaves the temp file
    behind — the same debris a real mid-rename crash leaves."""
    fault_point(f"{site}.write", path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        fault_point(f"{site}.rename", path)
        os.replace(tmp, path)
    except TornRename:
        # An injected crash between write and rename: the .tmp survives,
        # exactly like a real kill at this instant would leave it.
        raise
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_dir(path.parent)
    fault_point(f"{site}.written", path)


class SnapshotStore:
    """Reads and writes snapshots in one directory."""

    def __init__(self, config: SnapshotConfig) -> None:
        self.config = config
        self.directory = config.path
        #: What the last :meth:`load_latest` had to do (None before any
        #: load); the durable runner folds it into the result export when
        #: recovery had to fall back.
        self.last_recovery: RecoveryReport | None = None

    # -- writing ------------------------------------------------------------

    def write(
        self,
        state: Any,
        sequence: int,
        sim_time: float,
        events_processed: int,
        completed: bool = False,
    ) -> SnapshotInfo:
        """Atomically persist *state* as snapshot number *sequence*."""
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()
        name = f"snap-{sequence:08d}.pkl"
        atomic_write(self.directory / name, payload, site="snapshot.payload")
        info = SnapshotInfo(
            sequence=sequence,
            payload=name,
            sha256=digest,
            sim_time=float(sim_time),
            events_processed=int(events_processed),
            completed=bool(completed),
        )
        manifest = self._manifest_dict(info)
        body = (json.dumps(manifest, indent=2) + "\n").encode("utf-8")
        # Sidecar first: the generation must be independently verifiable
        # before the top-level manifest ever points at it.
        atomic_write(self._meta_path(sequence), body, site="snapshot.meta")
        atomic_write(self.directory / MANIFEST_NAME, body, site="snapshot.manifest")
        self._prune(current=info.sequence, keep_payload=info.payload)
        self.sweep_debris()
        return info

    @staticmethod
    def _manifest_dict(info: SnapshotInfo) -> dict:
        return {
            "format": SNAPSHOT_FORMAT,
            "sequence": info.sequence,
            "payload": info.payload,
            "sha256": info.sha256,
            "sim_time": info.sim_time,
            "events_processed": info.events_processed,
            "completed": info.completed,
        }

    def _meta_path(self, sequence: int) -> Path:
        return self.directory / f"snap-{sequence:08d}.meta.json"

    @staticmethod
    def _sequence_of(path: Path) -> int | None:
        """Parse the sequence number out of ``snap-<seq>.*`` names."""
        stem = path.name.split(".", 1)[0]
        try:
            return int(stem.split("-", 1)[1])
        except (IndexError, ValueError):  # foreign file
            return None

    def _prune(self, current: int, keep_payload: str | None = None) -> None:
        """Drop generations outside the keep window ending at *current*.

        Deletes payloads *and* their sidecar manifests whose sequence is
        older than the newest ``keep`` generations — or **newer** than
        *current*, which only happens when sequence numbering restarted
        (a fresh run reusing the directory): those high-numbered leftovers
        are stale state from a previous run and must never win a
        newest-first recovery scan.  The payload the current manifest
        points at (*keep_payload*) is never deleted, whatever its number.
        """
        cutoff = current - self.config.keep + 1
        for path in list(self.directory.glob("snap-*.pkl")) + list(
            self.directory.glob("snap-*.meta.json")
        ):
            seq = self._sequence_of(path)
            if seq is None:  # pragma: no cover - foreign file
                continue
            if keep_payload is not None and path.name in (
                keep_payload,
                self._meta_path_name(keep_payload),
            ):
                continue
            if seq < cutoff or seq > current:
                path.unlink(missing_ok=True)

    @staticmethod
    def _meta_path_name(payload: str) -> str:
        return payload.removesuffix(".pkl") + ".meta.json"

    def sweep_debris(self) -> int:
        """Delete orphaned ``*.tmp`` files (mid-``atomic_write`` crash
        leftovers); returns how many were removed.  Run on every write
        and at resume startup."""
        swept = 0
        for path in self.directory.glob("*.tmp"):
            try:
                path.unlink()
                swept += 1
            except OSError:  # pragma: no cover - raced or permission
                pass
        return swept

    # -- reading ------------------------------------------------------------

    def manifest(self) -> SnapshotInfo:
        """Parse and validate the manifest; raise if absent or malformed."""
        path = self.directory / MANIFEST_NAME
        if not path.is_file():
            raise SnapshotError(f"no snapshot manifest at {path}")
        return self._parse_manifest(path)

    def _parse_manifest(self, path: Path) -> SnapshotInfo:
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise SnapshotError(f"unreadable snapshot manifest {path}: {exc}") from exc
        if raw.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"snapshot format {raw.get('format')!r} is not supported "
                f"(expected {SNAPSHOT_FORMAT})"
            )
        try:
            return SnapshotInfo(
                sequence=int(raw["sequence"]),
                payload=str(raw["payload"]),
                sha256=str(raw["sha256"]),
                sim_time=float(raw["sim_time"]),
                events_processed=int(raw["events_processed"]),
                completed=bool(raw.get("completed", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"malformed snapshot manifest {path}: {exc}") from exc

    def _verify(self, info: SnapshotInfo) -> Any:
        """Checksum and unpickle the generation *info* describes."""
        path = self.directory / info.payload
        if not path.is_file():
            raise SnapshotError(f"snapshot payload {path} is missing")
        payload = path.read_bytes()
        digest = hashlib.sha256(payload).hexdigest()
        if digest != info.sha256:
            raise SnapshotError(
                f"snapshot payload {path} fails its checksum "
                f"(expected {info.sha256}, got {digest})"
            )
        try:
            return pickle.loads(payload)
        except Exception as exc:
            raise SnapshotError(
                f"snapshot payload {path} failed to unpickle: {exc}"
            ) from exc

    def generations(self) -> list[SnapshotInfo]:
        """Every retained generation with a parseable sidecar manifest,
        newest (highest sequence) first.  Unparseable sidecars are
        skipped — the recovery ladder treats them as failed candidates."""
        infos: list[SnapshotInfo] = []
        for path in self.directory.glob("snap-*.meta.json"):
            try:
                infos.append(self._parse_manifest(path))
            except SnapshotError:
                continue
        infos.sort(key=lambda info: info.sequence, reverse=True)
        return infos

    def load_latest(self) -> tuple[Any, SnapshotInfo]:
        """Load, verify, and unpickle the newest loadable snapshot.

        Prefers the generation the manifest points at; on corruption
        falls back generation-by-generation (newest first) through the
        retained sidecar manifests.  Sets :attr:`last_recovery` on
        success; raises :class:`SnapshotError` listing every failed
        attempt when nothing survives.
        """
        if not self.directory.is_dir():
            raise SnapshotError(
                f"no snapshot manifest at {self.directory / MANIFEST_NAME}"
            )
        swept = self.sweep_debris()
        tried: list[str] = []
        errors: list[str] = []
        requested: str | None = None
        primary: SnapshotInfo | None = None
        try:
            primary = self.manifest()
            requested = primary.payload
        except SnapshotError as exc:
            errors.append(str(exc))
        if primary is not None:
            tried.append(primary.payload)
            try:
                state = self._verify(primary)
            except SnapshotError as exc:
                errors.append(str(exc))
            else:
                self.last_recovery = RecoveryReport(
                    requested=requested,
                    recovered=primary.payload,
                    recovered_sequence=primary.sequence,
                    fallback=False,
                    tried=tuple(tried),
                    errors=(),
                    swept_tmp=swept,
                )
                return state, primary
        # The newest generation is unusable: walk the retained sidecar
        # manifests newest-first for the freshest one that still verifies.
        for info in self.generations():
            if info.payload in tried:
                continue
            tried.append(info.payload)
            try:
                state = self._verify(info)
            except SnapshotError as exc:
                errors.append(str(exc))
                continue
            self.last_recovery = RecoveryReport(
                requested=requested,
                recovered=info.payload,
                recovered_sequence=info.sequence,
                fallback=True,
                tried=tuple(tried),
                errors=tuple(errors),
                swept_tmp=swept,
            )
            return state, info
        if not tried and not errors:
            raise SnapshotError(
                f"no snapshot manifest at {self.directory / MANIFEST_NAME}"
            )
        detail = "; ".join(errors) if errors else "no verifiable generation"
        raise SnapshotError(
            f"no loadable snapshot generation in {self.directory} "
            f"(tried {tried or 'nothing'}): {detail}"
        )
