"""Crash-safe execution of a cluster-engine run.

:class:`DurableRunner` drives a :class:`~repro.experiments.engine.ClusterEngine`
through its ``start → advance → finalize`` phases in bounded event
batches, snapshotting the full run state (:mod:`repro.durability.state`)
whenever a wall-clock or event-count trigger fires, and snapshot-then-exit
on SIGINT/SIGTERM.  A SIGKILLed run loses at most the work since its last
snapshot; :meth:`DurableRunner.resume` verifies and restores the latest
snapshot and continues to a final result that is bit-identical to an
uninterrupted run (given a deterministic cost clock — wall-clock selection
budgets are inherently host-dependent).

On success the store's manifest is marked ``completed`` and carries the
final :class:`~repro.experiments.engine.ExperimentResult`, so resuming an
already-finished run re-reports the stored result instead of failing.
"""

from __future__ import annotations

import dataclasses
import signal
import time
from typing import TYPE_CHECKING, Callable

from repro.durability.snapshot import (
    RecoveryReport,
    SnapshotConfig,
    SnapshotInfo,
    SnapshotStore,
)
from repro.durability.state import CompletedRun, RunState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.engine import ClusterEngine, ExperimentResult

__all__ = ["DurableRunner", "RunInterrupted"]

#: Signals that trigger a snapshot-and-clean-exit.
_STOP_SIGNALS = (signal.SIGINT, signal.SIGTERM)


class RunInterrupted(RuntimeError):
    """The run was stopped by a signal after snapshotting cleanly."""

    def __init__(self, signum: int, info: SnapshotInfo) -> None:
        name = signal.Signals(signum).name
        super().__init__(
            f"run interrupted by {name}; state snapshotted "
            f"(sequence {info.sequence}, t={info.sim_time:.0f}s, "
            f"{info.events_processed} events)"
        )
        self.signum = signum
        self.info = info


class DurableRunner:
    """Runs an engine with periodic snapshots and graceful interruption."""

    #: Events processed between signal/trigger checks; small enough that a
    #: SIGTERM turns into a snapshot within milliseconds, large enough to
    #: keep trigger-check overhead invisible.
    CHECK_EVERY = 128

    def __init__(
        self,
        engine: "ClusterEngine",
        config: SnapshotConfig,
        on_snapshot: Callable[[SnapshotInfo], None] | None = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.store = SnapshotStore(config)
        # Startup sweep: a crash mid-``atomic_write`` leaves ``.tmp``
        # debris behind; clear it before this run adds its own files.
        self.store.sweep_debris()
        self.on_snapshot = on_snapshot
        self.snapshots_written = 0
        self.resumed_from: SnapshotInfo | None = None
        #: How :meth:`resume` found its snapshot (``None`` for fresh runs);
        #: folded into the result export when recovery had to fall back
        #: past a corrupted generation.
        self.recovery: RecoveryReport | None = None
        self._completed_result: "ExperimentResult | None" = None
        self._sequence = 1
        self._stop_signum: int | None = None
        self._old_handlers: dict[int, object] = {}
        self._last_snap_wall = time.monotonic()
        self._last_snap_events = engine.sim.events_processed

    # -- resume -------------------------------------------------------------

    @classmethod
    def resume(
        cls,
        config: SnapshotConfig,
        on_snapshot: Callable[[SnapshotInfo], None] | None = None,
    ) -> "DurableRunner":
        """Restore the latest verified snapshot from ``config.directory``."""
        store = SnapshotStore(config)
        state, info = store.load_latest()
        if isinstance(state, CompletedRun):
            # The interrupted process actually finished; nothing to re-run.
            runner = cls.__new__(cls)
            runner.engine = None  # type: ignore[assignment]
            runner.config = config
            runner.store = store
            runner.on_snapshot = on_snapshot
            runner.snapshots_written = 0
            runner.resumed_from = info
            runner.recovery = store.last_recovery
            runner._completed_result = state.result
            runner._sequence = info.sequence + 1
            runner._stop_signum = None
            runner._old_handlers = {}
            runner._last_snap_wall = time.monotonic()
            runner._last_snap_events = 0
            return runner
        if not isinstance(state, RunState):
            raise TypeError(
                f"snapshot holds {type(state).__name__}, not a RunState"
            )
        engine = state.restore()
        runner = cls(engine, config, on_snapshot)
        runner.resumed_from = info
        runner.recovery = store.last_recovery
        runner._sequence = info.sequence + 1
        runner._last_snap_events = engine.sim.events_processed
        return runner

    # -- running ------------------------------------------------------------

    def run(self) -> "ExperimentResult":
        """Run (or continue) the engine to completion, snapshotting as
        configured.

        Raises
        ------
        RunInterrupted
            On SIGINT/SIGTERM, after writing a clean resumable snapshot.
        """
        if self._completed_result is not None:
            return self._attach_recovery(self._completed_result)
        engine = self.engine
        if not engine._started:
            engine.start()
        self._install_signal_handlers()
        try:
            while True:
                more = engine.advance(max_events=self._next_batch())
                if self._stop_signum is not None:
                    info = self._snapshot()
                    raise RunInterrupted(self._stop_signum, info)
                if more and self._snapshot_due():
                    self._snapshot()
                if not more:
                    break
            result = engine.finalize()
        finally:
            self._restore_signal_handlers()
        self.store.write(
            CompletedRun(result=result),
            sequence=self._sequence,
            sim_time=engine.sim.now,
            events_processed=engine.sim.events_processed,
            completed=True,
        )
        self._completed_result = result
        return self._attach_recovery(result)

    def request_stop(self, signum: int = signal.SIGINT) -> None:
        """Ask the run loop to snapshot and stop (what the signal handler
        does; public for tests and embedding)."""
        self._stop_signum = int(signum)

    def _attach_recovery(self, result: "ExperimentResult") -> "ExperimentResult":
        """Fold a *fallback* recovery into the result (and its export).

        A clean resume attaches nothing, keeping resumed exports
        bit-identical to uninterrupted ones; only a resume that had to
        skip corrupted generations is recorded.
        """
        if self.recovery is None or not self.recovery.fallback:
            return result
        if getattr(result, "recovery", None) is not None:
            return result  # already carries an (older) recovery report
        return dataclasses.replace(result, recovery=self.recovery.to_dict())

    # -- internals ----------------------------------------------------------

    def _next_batch(self) -> int:
        batch = self.CHECK_EVERY
        if self.config.every_events is not None:
            processed = self.engine.sim.events_processed
            until_due = (
                self._last_snap_events + self.config.every_events - processed
            )
            batch = min(batch, max(1, until_due))
        return batch

    def _snapshot_due(self) -> bool:
        if self.config.every_events is not None:
            due_events = self._last_snap_events + self.config.every_events
            if self.engine.sim.events_processed >= due_events:
                return True
        if self.config.interval_seconds is not None:
            if time.monotonic() - self._last_snap_wall >= self.config.interval_seconds:
                return True
        return False

    def _snapshot(self) -> SnapshotInfo:
        engine = self.engine
        state = RunState.capture(engine)
        info = self.store.write(
            state,
            sequence=self._sequence,
            sim_time=engine.sim.now,
            events_processed=engine.sim.events_processed,
        )
        self._sequence += 1
        self.snapshots_written += 1
        self._last_snap_wall = time.monotonic()
        self._last_snap_events = engine.sim.events_processed
        if self.on_snapshot is not None:
            self.on_snapshot(info)
        return info

    def _install_signal_handlers(self) -> None:
        def handler(signum: int, frame: object) -> None:
            self._stop_signum = signum

        for sig in _STOP_SIGNALS:
            try:
                self._old_handlers[int(sig)] = signal.signal(sig, handler)
            except ValueError:  # pragma: no cover - non-main thread
                pass

    def _restore_signal_handlers(self) -> None:
        for signum, old in self._old_handlers.items():
            try:
                signal.signal(signum, old)  # type: ignore[arg-type]
            except ValueError:  # pragma: no cover - non-main thread
                pass
        self._old_handlers.clear()
