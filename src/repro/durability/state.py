"""What a run snapshot contains, and how to capture/restore it.

A :class:`RunState` pickles the *entire* cluster engine object graph in
one shot — simulator clock and live event heap, job queue and per-job
checkpoint progress, VM fleet with billing anchors, metrics accumulators,
the scheduler (portfolio selector Smart/Stale/Poor sets, reflection
store), predictor history, and every RNG stream (``numpy`` generators
pickle bit-exactly).  Pickling one graph preserves aliasing: the Job that
sits in the queue is the same object referenced by ``_jobs_by_id`` and by
pending JOB_FINISH events, before and after a round trip.

The only run state living *outside* the engine is the module-level event
sequence counter (:mod:`repro.sim.events`), which drives same-time event
tie-breaks; it is captured alongside and restored before the engine
processes another event, so a resumed run replays bit-identically to an
uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.events import restore_seq, snapshot_seq

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.engine import ClusterEngine, ExperimentResult

__all__ = ["RunState", "CompletedRun"]


@dataclass(slots=True)
class RunState:
    """A resumable mid-run snapshot."""

    engine: "ClusterEngine"
    seq: int

    @classmethod
    def capture(cls, engine: "ClusterEngine") -> "RunState":
        engine.checkpoint_wall()
        # Flush the run tracer first so the pickled ``_flushed_bytes``
        # marks exactly the trace prefix consistent with this snapshot
        # (the tracer's ``__getstate__`` flushes too; doing it here keeps
        # the invariant independent of pickling order).
        if getattr(engine, "tracer", None) is not None:
            engine.tracer.flush()
        return cls(engine=engine, seq=snapshot_seq())

    def restore(self) -> "ClusterEngine":
        """Reinstall global state and hand back the live engine."""
        restore_seq(self.seq)
        self.engine.rebase_wall()
        tracer = getattr(self.engine, "tracer", None)
        if tracer is not None:
            # Drop trace records from the lost post-snapshot segment;
            # the resumed run re-emits them bit-identically, so the final
            # file has no duplicated round ids.
            tracer.resume_truncate()
            from repro.obs import records as trace_records

            tracer.emit(
                trace_records.RUN_START, self.engine.sim.now,
                scheduler=self.engine.scheduler.describe(),
                jobs=len(self.engine.jobs),
                tick=self.engine.config.tick,
                max_vms=self.engine.config.provider.max_vms,
                resumed=True,
            )
        return self.engine


@dataclass(slots=True)
class CompletedRun:
    """The terminal snapshot of a finished run.

    Carries the final :class:`ExperimentResult` so a resume of an
    already-completed run (e.g. the CI kill/resume job losing the race
    and killing nothing) degenerates to re-reporting the stored result
    instead of failing.
    """

    result: "ExperimentResult"
