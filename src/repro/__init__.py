"""repro — portfolio scheduling for long-term execution of scientific
workloads in IaaS clouds.

A from-scratch Python reproduction of Deng, Song, Ren & Iosup (SC'13):
a portfolio scheduler that selects, by online simulation under a time
constraint, the best of 60 provisioning/allocation policies for the
current workload on EC2-style cloud resources.

Quickstart
----------
>>> from repro import generate_trace, KTH_SP2, run_portfolio
>>> jobs = generate_trace(KTH_SP2, duration=6 * 3600, seed=42)
>>> result, scheduler = run_portfolio(jobs)
>>> result.metrics.avg_bounded_slowdown  # doctest: +SKIP
1.7

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.cloud import CloudProfile, CloudProvider, ProviderConfig, VM, VMState
from repro.cloud.failures import FailureModel
from repro.core import (
    AlgorithmSelectionModel,
    FixedScheduler,
    OnlineSimulator,
    PortfolioScheduler,
    ReflectionStore,
    Scheduler,
    TimeConstrainedSelector,
    UtilityFunction,
)
from repro.durability import (
    DurableRunner,
    RunInterrupted,
    SnapshotConfig,
    SnapshotStore,
)
from repro.experiments import (
    ClusterEngine,
    EngineConfig,
    ExperimentResult,
    run_fixed,
    run_portfolio,
    run_provisioning_clusters,
)
from repro.metrics import MetricsCollector, SummaryMetrics, bounded_slowdown
from repro.metrics.timeseries import TimeseriesRecorder
from repro.policies import CombinedPolicy, build_portfolio, policy_by_name
from repro.policies.backfilling import BackfillingPolicy, build_backfilling_portfolio
from repro.predict import KnnPredictor, OraclePredictor, UserEstimatePredictor
from repro.resilience import (
    CheckpointPolicy,
    FaultModel,
    ResilienceStats,
    RetryPolicy,
)
from repro.workload.lublin import LublinModel, generate_lublin_trace
from repro.workload.workflows import (
    Workflow,
    bag_of_tasks,
    fork_join_workflow,
    merge_workflows,
    random_layered_workflow,
)
from repro.sim import VirtualCostClock, WallCostClock
from repro.workload import (
    DAS2_FS0,
    KTH_SP2,
    LPC_EGEE,
    SDSC_SP2,
    TRACES,
    Job,
    TraceSpec,
    clean_jobs,
    generate_trace,
    parse_swf_file,
    summarize_trace,
)

__version__ = "1.0.0"

__all__ = [
    "AlgorithmSelectionModel",
    "BackfillingPolicy",
    "CheckpointPolicy",
    "CloudProfile",
    "CloudProvider",
    "ClusterEngine",
    "CombinedPolicy",
    "DAS2_FS0",
    "DurableRunner",
    "EngineConfig",
    "ExperimentResult",
    "FailureModel",
    "FaultModel",
    "FixedScheduler",
    "Job",
    "KTH_SP2",
    "KnnPredictor",
    "LPC_EGEE",
    "LublinModel",
    "MetricsCollector",
    "OnlineSimulator",
    "OraclePredictor",
    "PortfolioScheduler",
    "ProviderConfig",
    "ReflectionStore",
    "ResilienceStats",
    "RetryPolicy",
    "RunInterrupted",
    "SDSC_SP2",
    "Scheduler",
    "SnapshotConfig",
    "SnapshotStore",
    "SummaryMetrics",
    "TRACES",
    "TimeConstrainedSelector",
    "TimeseriesRecorder",
    "TraceSpec",
    "UserEstimatePredictor",
    "UtilityFunction",
    "VM",
    "VMState",
    "VirtualCostClock",
    "WallCostClock",
    "Workflow",
    "bag_of_tasks",
    "bounded_slowdown",
    "build_backfilling_portfolio",
    "build_portfolio",
    "clean_jobs",
    "fork_join_workflow",
    "generate_lublin_trace",
    "generate_trace",
    "merge_workflows",
    "parse_swf_file",
    "policy_by_name",
    "random_layered_workflow",
    "run_fixed",
    "run_portfolio",
    "run_provisioning_clusters",
    "summarize_trace",
    "__version__",
]
