"""VM failure model (extension; the paper assumes reliable VMs).

Cloud instances do fail, and long-running scientific workloads meet
those failures.  :class:`FailureModel` gives each VM an exponentially
distributed lifetime (mean ``mtbf_seconds``); when a VM dies while
running a job, the whole job is killed and re-queued from scratch (the
rigid no-checkpoint model matching the paper's job semantics), wasting
the partial execution.

The model is deterministic given its seed, independent of every other
random stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.rng import make_rng

__all__ = ["FailureModel", "FailureSampler"]


@dataclass(slots=True, frozen=True)
class FailureModel:
    """Per-VM exponential failures.

    ``mtbf_seconds`` is the mean time between failures of a single VM;
    e.g. 30 days ≈ a flaky-but-plausible public-cloud instance, 6 hours ≈
    an aggressive stress test.
    """

    mtbf_seconds: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mtbf_seconds <= 0:
            raise ValueError(f"mtbf_seconds must be positive, got {self.mtbf_seconds}")

    def sampler(self) -> "FailureSampler":
        return FailureSampler(self)


class FailureSampler:
    """Draws per-VM failure times (stateful; one per engine run)."""

    def __init__(self, model: FailureModel) -> None:
        self.model = model
        self._rng: np.random.Generator = make_rng(model.seed, "vm-failures")
        self.failures_drawn = 0

    def time_to_failure(self) -> float:
        """Lifetime of a freshly leased VM (seconds)."""
        self.failures_drawn += 1
        return float(self._rng.exponential(self.model.mtbf_seconds))
