"""VM instance lifecycle.

A VM is leased (BOOTING), becomes usable after the provisioning delay
(IDLE), alternates IDLE/BUSY as jobs are assigned, and is eventually
TERMINATED.  Jobs run exclusively: one VM serves at most one job's
processor at a time (paper §5.1: homogeneous single-core instances).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["VM", "VMState"]


class VMState(enum.Enum):
    BOOTING = "booting"
    IDLE = "idle"
    BUSY = "busy"
    TERMINATED = "terminated"


@dataclass(slots=True)
class VM:
    """One leased single-core VM instance.

    Parameters
    ----------
    vm_id:
        Unique id within a provider.
    lease_time:
        When the lease started (billing begins here, per EC2 semantics —
        boot time is paid for).
    ready_time:
        When the instance becomes usable (lease_time + boot delay).
    """

    vm_id: int
    lease_time: float
    ready_time: float
    state: VMState = VMState.BOOTING
    job_id: int | None = field(default=None, compare=False)
    busy_until: float = field(default=-1.0, compare=False)
    terminate_time: float = field(default=-1.0, compare=False)
    #: Reserved instances are committed for the whole experiment: billed
    #: flat at a discounted rate, never terminated by release rules.
    reserved: bool = field(default=False, compare=False)
    #: Spot instances (hostile-cloud extension): leased from the spot
    #: market at ``price`` (a fraction of the on-demand rate, locked at
    #: lease time) and reclaimable by the provider at any moment.
    spot: bool = field(default=False, compare=False)
    #: Price multiplier applied to every charge of this VM.  1.0 for
    #: on-demand/reserved instances, so multiplying is exact (IEEE754
    #: ``x * 1.0 == x``) and the default path stays bit-identical.
    price: float = field(default=1.0, compare=False)

    def __post_init__(self) -> None:
        if self.ready_time < self.lease_time:
            raise ValueError(
                f"vm {self.vm_id}: ready_time {self.ready_time} precedes "
                f"lease_time {self.lease_time}"
            )

    @property
    def alive(self) -> bool:
        return self.state is not VMState.TERMINATED

    def boot_complete(self, now: float) -> None:
        """BOOTING → IDLE at *now*."""
        if self.state is not VMState.BOOTING:
            raise RuntimeError(f"vm {self.vm_id}: boot_complete in state {self.state}")
        if now + 1e-9 < self.ready_time:
            raise RuntimeError(
                f"vm {self.vm_id}: boot_complete at {now} before ready {self.ready_time}"
            )
        self.state = VMState.IDLE

    def assign(self, job_id: int, until: float) -> None:
        """IDLE → BUSY running *job_id* until *until*."""
        if self.state is not VMState.IDLE:
            raise RuntimeError(f"vm {self.vm_id}: assign in state {self.state}")
        self.state = VMState.BUSY
        self.job_id = job_id
        self.busy_until = until

    def release_job(self) -> None:
        """BUSY → IDLE when its job completes."""
        if self.state is not VMState.BUSY:
            raise RuntimeError(f"vm {self.vm_id}: release_job in state {self.state}")
        self.state = VMState.IDLE
        self.job_id = None
        self.busy_until = -1.0

    def terminate(self, now: float) -> None:
        """Any live state → TERMINATED (busy VMs cannot be terminated)."""
        if self.state is VMState.TERMINATED:
            raise RuntimeError(f"vm {self.vm_id}: already terminated")
        if self.state is VMState.BUSY:
            raise RuntimeError(f"vm {self.vm_id}: cannot terminate while busy")
        if now < self.lease_time:
            raise ValueError(f"vm {self.vm_id}: terminate before lease")
        self.state = VMState.TERMINATED
        self.terminate_time = now
