"""EC2-style IaaS provider.

Implements the resource model of the paper's §5.1: on-demand leases of
homogeneous single-core VMs, a hard cap on concurrently leased instances
(256 in all experiments), a fixed acquisition+boot delay (120 s), and
hour-rounded billing.  The provider tracks the fleet and accumulates the
charged cost ``RV``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cloud.billing import BillingModel, HourlyBilling
from repro.cloud.vm import VM, VMState

__all__ = ["CloudProvider", "ProviderConfig"]


@dataclass(slots=True, frozen=True)
class ProviderConfig:
    """Provider parameters (defaults = the paper's experimental setup).

    ``billing_period`` is the charging granularity: 3600 s reproduces the
    2013 EC2 hour-rounded model the paper assumes; 60 s / 1 s model the
    per-minute / per-second billing of modern clouds (see the billing
    ablation benchmark).
    """

    max_vms: int = 256
    boot_delay: float = 120.0
    billing_period: float = 3_600.0
    #: Flat-rate discount applied to reserved-instance settlements
    #: (:meth:`CloudProvider.settle_stragglers` and
    #: :meth:`CloudProvider.finalize_reserved` read it when no explicit
    #: discount is passed, so call sites cannot silently disagree).
    reserved_discount: float = 0.4

    def __post_init__(self) -> None:
        if self.max_vms < 1:
            raise ValueError(f"max_vms must be >= 1, got {self.max_vms}")
        if self.boot_delay < 0:
            raise ValueError(f"boot_delay must be >= 0, got {self.boot_delay}")
        if self.billing_period <= 0:
            raise ValueError(
                f"billing_period must be positive, got {self.billing_period}"
            )
        if not 0.0 < self.reserved_discount <= 1.0:
            raise ValueError(
                f"reserved_discount must lie in (0, 1], got {self.reserved_discount}"
            )


class CloudProvider:
    """Leases and bills VM instances.

    The provider owns VM objects for their whole life; schedulers interact
    through :meth:`lease`, :meth:`terminate` and the fleet queries.
    """

    def __init__(
        self,
        config: ProviderConfig | None = None,
        billing: BillingModel | None = None,
    ) -> None:
        self.config = config or ProviderConfig()
        self.billing = billing or HourlyBilling(self.config.billing_period)
        self._next_id = 0
        self._fleet: dict[int, VM] = {}
        self.charged_seconds_total = 0.0
        self.leases_total = 0
        #: Price-weighted charged seconds booked against spot instances
        #: (subset of ``charged_seconds_total``); 0.0 with no spot market.
        self.spot_charged_seconds = 0.0
        #: Optional billing observation hook: called with
        #: ``(vm, charged_seconds, end_time, kind)`` after every charge is
        #: booked into ``charged_seconds_total`` (``kind`` is one of
        #: ``terminate | straggler | reserved | preempt``).  The audit
        #: layer's invariant monitor subscribes here to keep its
        #: independent charge ledger; ``None`` (default) adds no overhead.
        self.on_charge: Callable[[VM, float, float, str], None] | None = None

    # -- leasing ------------------------------------------------------------

    def lease(
        self,
        count: int,
        now: float,
        reserved: bool = False,
        *,
        spot: bool = False,
        price: float = 1.0,
    ) -> list[VM]:
        """Lease up to *count* VMs at *now*; returns the VMs actually leased.

        The result is shorter than *count* when the concurrency cap binds
        (EC2 instance-limit semantics: requests are partially satisfied).
        ``reserved`` marks committed instances: they count against the cap
        and boot like any VM, but release rules skip them and they are
        billed flat-rate via :meth:`finalize_reserved`.  ``spot`` marks
        preemptible instances charged at ``price`` × the on-demand rate
        (locked at lease time); the provider may reclaim them at any
        moment via :meth:`preempt`.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if reserved and spot:
            raise ValueError("a VM cannot be both reserved and spot")
        if price <= 0:
            raise ValueError(f"price must be positive, got {price}")
        room = self.config.max_vms - self.leased_count()
        granted = min(count, max(0, room))
        vms = []
        for _ in range(granted):
            vm = VM(
                vm_id=self._next_id,
                lease_time=now,
                ready_time=now + self.config.boot_delay,
                reserved=reserved,
                spot=spot,
                price=price,
            )
            self._next_id += 1
            self._fleet[vm.vm_id] = vm
            vms.append(vm)
        self.leases_total += granted
        return vms

    def terminate(self, vm: VM, now: float) -> float:
        """Terminate *vm*, book its charge, and return the charged seconds.

        Reserved instances cannot be terminated this way — their lease is
        a commitment settled by :meth:`finalize_reserved`.
        """
        if vm.vm_id not in self._fleet:
            raise KeyError(f"vm {vm.vm_id} is not in this provider's fleet")
        if vm.reserved:
            raise ValueError(
                f"vm {vm.vm_id} is reserved; use finalize_reserved at run end"
            )
        vm.terminate(now)
        charge = self.billing.charged_seconds(vm.lease_time, now) * vm.price
        self.charged_seconds_total += charge
        if vm.spot:
            self.spot_charged_seconds += charge
        del self._fleet[vm.vm_id]
        if self.on_charge is not None:
            self.on_charge(vm, charge, now, "terminate")
        return charge

    def preempt(self, vm: VM, now: float) -> float:
        """Provider-initiated reclamation of a spot VM; returns the charge.

        EC2 spot semantics: the customer pays ``price`` × whole *completed*
        billing periods — the partial period the provider cut short is
        free (a VM reclaimed inside its first period costs nothing).  The
        caller must have released any job first; a BUSY VM cannot be
        reclaimed through this method.
        """
        if vm.vm_id not in self._fleet:
            raise KeyError(f"vm {vm.vm_id} is not in this provider's fleet")
        if not vm.spot:
            raise ValueError(f"vm {vm.vm_id} is not a spot instance")
        vm.terminate(now)
        charge = self.billing.completed_seconds(vm.lease_time, now) * vm.price
        self.charged_seconds_total += charge
        self.spot_charged_seconds += charge
        del self._fleet[vm.vm_id]
        if self.on_charge is not None:
            self.on_charge(vm, charge, now, "preempt")
        return charge

    def terminate_all(self, now: float) -> float:
        """Terminate every live, non-busy on-demand VM (end-of-run cleanup)."""
        total = 0.0
        for vm in list(self._fleet.values()):
            if vm.state is not VMState.BUSY and not vm.reserved:
                total += self.terminate(vm, now)
        return total

    def settle_stragglers(
        self, now: float, reserved_discount: float | None = None
    ) -> float:
        """Book charges for VMs still BUSY at *now* (stalled-run cleanup).

        :meth:`terminate_all` and :meth:`finalize_reserved` deliberately
        skip BUSY VMs, so a run that hits its safety horizon with stuck
        jobs would otherwise omit those VMs' charges from RV entirely.
        This settles them — hour-rounded for on-demand, flat-rate for
        reserved — without touching their (still BUSY) state.  A second
        call books nothing new, and drained runs have no BUSY VMs, so
        this is a no-op outside the stalled case.

        ``reserved_discount`` defaults to the provider config's rate, so
        every call site settles reserved capacity at the same price as
        :meth:`finalize_reserved`; pass a value only to override it.
        """
        if reserved_discount is None:
            reserved_discount = self.config.reserved_discount
        extra = 0.0
        settled: list[tuple[VM, float]] = []
        for vm in self._fleet.values():
            if vm.state is not VMState.BUSY:
                continue
            if vm.reserved:
                charge = max(0.0, now - vm.lease_time) * reserved_discount
            else:
                charge = self.billing.charged_seconds(
                    vm.lease_time, max(now, vm.lease_time)
                ) * vm.price
                if vm.spot:
                    self.spot_charged_seconds += charge
            extra += charge
            settled.append((vm, charge))
        self.charged_seconds_total += extra
        if self.on_charge is not None:
            for vm, charge in settled:
                self.on_charge(vm, charge, now, "straggler")
        # Mark them settled by rebasing the lease clock so a (hypothetical)
        # later settlement cannot double-charge the same interval.
        for vm in self._fleet.values():
            if vm.state is VMState.BUSY:
                vm.lease_time = max(vm.lease_time, now)
                vm.ready_time = max(vm.ready_time, vm.lease_time)
        return extra

    def finalize_reserved(self, now: float, discount: float | None = None) -> float:
        """Settle every reserved instance's flat-rate bill at run end.

        A reserved VM costs ``discount × committed seconds`` whether used
        or not (the effective-rate model of long-term reservations);
        the charge is booked into the provider total and returned.
        ``discount`` defaults to the config's ``reserved_discount``.
        """
        if discount is None:
            discount = self.config.reserved_discount
        if not 0.0 < discount <= 1.0:
            raise ValueError(f"discount must lie in (0, 1], got {discount}")
        total = 0.0
        for vm in list(self._fleet.values()):
            if vm.reserved and vm.state is not VMState.BUSY:
                vm.terminate(now)
                charge = (now - vm.lease_time) * discount
                self.charged_seconds_total += charge
                total += charge
                del self._fleet[vm.vm_id]
                if self.on_charge is not None:
                    self.on_charge(vm, charge, now, "reserved")
        return total

    # -- fleet queries --------------------------------------------------------

    def leased_count(self) -> int:
        """Number of currently leased (booting/idle/busy) VMs."""
        return len(self._fleet)

    def headroom(self) -> int:
        """How many more VMs could be leased right now."""
        return self.config.max_vms - self.leased_count()

    def vms(self) -> list[VM]:
        """All live VMs (stable id order)."""
        return [self._fleet[k] for k in sorted(self._fleet)]

    def idle_vms(self) -> list[VM]:
        """Usable idle VMs, in stable id order."""
        return [vm for vm in self.vms() if vm.state is VMState.IDLE]

    def booting_vms(self) -> list[VM]:
        return [vm for vm in self.vms() if vm.state is VMState.BOOTING]

    def busy_vms(self) -> list[VM]:
        return [vm for vm in self.vms() if vm.state is VMState.BUSY]

    def available_count(self) -> int:
        """VMs that are idle or will become usable without new leases
        (idle + booting) — what provisioning policies count as supply."""
        return sum(1 for vm in self._fleet.values() if vm.state in
                   (VMState.IDLE, VMState.BOOTING))

    def spot_count(self) -> int:
        """Currently leased spot instances."""
        return sum(1 for vm in self._fleet.values() if vm.spot)

    # -- billing helpers ------------------------------------------------------

    def remaining_paid(self, vm: VM, now: float) -> float:
        """Paid seconds left before *vm*'s next hourly boundary."""
        return self.billing.remaining_paid(vm.lease_time, now)

    def next_boundary(self, vm: VM, now: float) -> float:
        """Absolute time of *vm*'s next charging boundary."""
        return self.billing.next_boundary(vm.lease_time, now)

    def accrued_cost(self, now: float) -> float:
        """Total charged seconds so far: booked terminations plus the
        hour-rounded charge the live fleet would incur if stopped at *now*."""
        live = sum(
            self.billing.charged_seconds(vm.lease_time, max(now, vm.lease_time))
            * vm.price
            for vm in self._fleet.values()
        )
        return self.charged_seconds_total + live
