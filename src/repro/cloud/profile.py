"""Cloud profile snapshots.

The portfolio scheduler's online simulator must evaluate tens of policies
against "the resource profile of the current system" (paper Fig. 2)
without mutating real state.  A :class:`CloudProfile` is that snapshot:
a compact, immutable view of the live fleet, cheap to copy per policy
evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.cloud.vm import VMState

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.provider import CloudProvider

__all__ = ["VMSnapshot", "CloudProfile"]


@dataclass(slots=True, frozen=True)
class VMSnapshot:
    """Frozen view of one live VM at snapshot time."""

    vm_id: int
    lease_time: float
    ready_time: float
    busy_until: float  # -1 when not busy

    def is_booting(self, now: float) -> bool:
        return now < self.ready_time

    def is_busy(self, now: float) -> bool:
        return self.busy_until > now


@dataclass(slots=True, frozen=True)
class CloudProfile:
    """State of the fleet handed to the online simulator.

    Attributes
    ----------
    now:
        Snapshot timestamp.
    vms:
        Live VMs (booting, idle, and busy).
    max_vms / boot_delay / billing_period:
        Provider parameters the simulated policies must respect.
    """

    now: float
    vms: tuple[VMSnapshot, ...]
    max_vms: int
    boot_delay: float
    billing_period: float
    #: Spot-market view (hostile-cloud extension): the current raw spot
    #: price and its risk-adjusted effective price, both as fractions of
    #: the on-demand rate.  ``None`` (the default, and always the case
    #: with no spot market) keeps policy evaluation bit-identical to the
    #: paper's cooperative cloud.
    spot_price: float | None = None
    spot_price_effective: float | None = None

    @classmethod
    def capture(cls, provider: "CloudProvider", now: float) -> "CloudProfile":
        """Snapshot *provider* at time *now*."""
        from repro.cloud.billing import HourlyBilling

        billing = provider.billing
        period = billing.period if isinstance(billing, HourlyBilling) else 3_600.0
        snaps = []
        for vm in provider.vms():
            busy_until = vm.busy_until if vm.state is VMState.BUSY else -1.0
            snaps.append(
                VMSnapshot(
                    vm_id=vm.vm_id,
                    lease_time=vm.lease_time,
                    ready_time=vm.ready_time,
                    busy_until=busy_until,
                )
            )
        return cls(
            now=now,
            vms=tuple(snaps),
            max_vms=provider.config.max_vms,
            boot_delay=provider.config.boot_delay,
            billing_period=period,
        )

    def idle_count(self) -> int:
        return sum(
            1 for vm in self.vms if not vm.is_booting(self.now) and not vm.is_busy(self.now)
        )

    def booting_count(self) -> int:
        return sum(1 for vm in self.vms if vm.is_booting(self.now))

    def busy_count(self) -> int:
        return sum(1 for vm in self.vms if vm.is_busy(self.now))


def profile_from_vms(
    now: float,
    vms: Sequence[VMSnapshot],
    max_vms: int = 256,
    boot_delay: float = 120.0,
    billing_period: float = 3_600.0,
) -> CloudProfile:
    """Build a profile directly from snapshots (tests, synthetic states)."""
    return CloudProfile(
        now=now,
        vms=tuple(vms),
        max_vms=max_vms,
        boot_delay=boot_delay,
        billing_period=billing_period,
    )
