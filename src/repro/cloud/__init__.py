"""IaaS-cloud substrate.

Models the paper's resource environment (§5.1): homogeneous single-core
VM instances leased on demand through an Amazon EC2-style API, charged by
the (rounded-up) hour, with a fixed acquisition/boot delay of 120 s and a
cap of 256 concurrently leased VMs.
"""

from repro.cloud.billing import BillingModel, HourlyBilling
from repro.cloud.profile import CloudProfile, VMSnapshot
from repro.cloud.provider import CloudProvider, ProviderConfig
from repro.cloud.spot import CircuitBreaker, SpotConfig, SpotMarket, SpotStats
from repro.cloud.vm import VM, VMState

__all__ = [
    "BillingModel",
    "CircuitBreaker",
    "CloudProfile",
    "CloudProvider",
    "HourlyBilling",
    "ProviderConfig",
    "SpotConfig",
    "SpotMarket",
    "SpotStats",
    "VM",
    "VMSnapshot",
    "VMState",
]
