"""Hostile-cloud substrate: spot market + control-plane degradation.

The paper's provider (§5.1) is cooperative — every lease is granted
instantly at a fixed price.  Real IaaS clouds are not: preemptible
("spot") capacity is cheaper but reclaimed with minutes of notice,
lease calls throw InsufficientCapacity, control planes rate-limit and
brown out.  This module models all of that as deterministic seeded
processes so hostile-cloud runs replay bit-identically:

* :class:`SpotConfig` — every knob, frozen and picklable; the engine's
  single switch for the whole layer (``None`` = the paper's cloud).
* :class:`SpotMarket` — the seeded environment processes: a piecewise-
  constant spot price (lognormal per price bucket, *bucket-pure*: the
  price of a bucket depends only on ``(seed, bucket)``, never on query
  order), per-bucket InsufficientCapacity windows, exponential
  per-VM preemption draws, and exponential brownout windows.
* :class:`CircuitBreaker` — the scheduler-side response: consecutive
  control-plane failures open the breaker (provisioning stops,
  backpressure builds), a cooldown (``resilience.RetryPolicy``
  decorrelated jitter, growing per reopen) gates a half-open probe,
  and one success closes it again.  CLOSED → OPEN → HALF_OPEN → CLOSED.
* :class:`SpotStats` — every counter the export surfaces.

Price/preemption/brownout streams are derived with
:func:`repro.sim.rng.make_rng`, so a run with the spot layer off never
touches them and stays bit-identical to builds predating this module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.resilience.retry import RetryPolicy, RetryState
from repro.sim.rng import make_rng

__all__ = ["SpotConfig", "SpotMarket", "CircuitBreaker", "SpotStats"]

#: Prices are clipped to this band: never free, never above on-demand.
_PRICE_FLOOR = 0.01
_PRICE_CEIL = 1.0

#: Bid-crossing scans are bounded to this many price buckets (with the
#: default 300 s bucket: ~one simulated week) — beyond that the VM has
#: almost surely been preempted or released anyway.
_MAX_BID_SCAN = 2048


@dataclass(slots=True, frozen=True)
class SpotConfig:
    """Every knob of the hostile-cloud layer (defaults = a mildly
    hostile public cloud; all processes seeded and deterministic).

    Parameters
    ----------
    seed:
        Root seed of the price/preemption/capacity/brownout/breaker
        streams (independent of every other experiment stream).
    spot_fraction:
        Default share of each provisioning request targeted at spot
        capacity (policies may override per tick via ``spot_plan``).
    price_mean / price_volatility / price_interval_seconds:
        The spot price is piecewise constant over ``price_interval``
        buckets; each bucket draws lognormal with mean ``price_mean``
        (fraction of the on-demand rate) and sigma ``price_volatility``,
        clipped to [0.01, 1].
    preempt_rate_per_hour:
        Mean capacity-reclaim preemptions per spot VM-hour (exponential
        inter-arrival per VM; 0 disables reclaim preemptions — bid
        crossings can still preempt).
    grace_period_seconds:
        Notice-to-kill window of a preemption (EC2 gives 120 s).  With a
        checkpoint policy configured and ``grace >= overhead`` the engine
        takes an emergency checkpoint inside the window.
    bid:
        Default maximum price the scheduler accepts for spot capacity.
        New leases are deferred while the price exceeds it, and running
        spot VMs are preempted when the price path first crosses it.
    capacity_shortage_rate:
        Probability (per price bucket) that spot lease calls return
        InsufficientCapacity for the whole bucket.
    brownout_mtbb_seconds / brownout_duration_seconds:
        Control-plane brownouts: exponential windows (mean time between
        brownouts / mean duration) during which *all* lease calls fail.
        ``None`` disables brownouts.
    api_rate_limit / api_rate_window_seconds:
        Token-bucket throttle on lease API calls: at most ``limit``
        calls per window; excess calls fail (and count against the
        breaker).  ``None`` = unthrottled.
    hedge:
        Fall back to on-demand capacity when spot is denied (bid
        exceeded, InsufficientCapacity) instead of leaving demand queued.
    breaker_threshold:
        Consecutive control-plane failures that open the circuit breaker.
    breaker_cooldown_seconds:
        Base cooldown of the open breaker; reopen cooldowns grow with
        decorrelated jitter (``RetryPolicy``) up to 16× this value.
    risk_aversion:
        Weight of the preemption-risk premium in the *effective* spot
        price the online simulator scores with (0 = price-taker).
    """

    seed: int = 0
    spot_fraction: float = 0.5
    price_mean: float = 0.3
    price_volatility: float = 0.25
    price_interval_seconds: float = 300.0
    preempt_rate_per_hour: float = 0.05
    grace_period_seconds: float = 120.0
    bid: float = 1.0
    capacity_shortage_rate: float = 0.0
    brownout_mtbb_seconds: float | None = None
    brownout_duration_seconds: float = 600.0
    api_rate_limit: int | None = None
    api_rate_window_seconds: float = 60.0
    hedge: bool = True
    breaker_threshold: int = 3
    breaker_cooldown_seconds: float = 300.0
    risk_aversion: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.spot_fraction <= 1.0:
            raise ValueError(
                f"spot_fraction must lie in [0, 1], got {self.spot_fraction}"
            )
        if not 0.0 < self.price_mean <= 1.0:
            raise ValueError(
                f"price_mean must lie in (0, 1], got {self.price_mean}"
            )
        if self.price_volatility < 0:
            raise ValueError(
                f"price_volatility must be >= 0, got {self.price_volatility}"
            )
        if self.price_interval_seconds <= 0:
            raise ValueError(
                f"price_interval_seconds must be positive, got "
                f"{self.price_interval_seconds}"
            )
        if self.preempt_rate_per_hour < 0:
            raise ValueError(
                f"preempt_rate_per_hour must be >= 0, got "
                f"{self.preempt_rate_per_hour}"
            )
        if self.grace_period_seconds < 0:
            raise ValueError(
                f"grace_period_seconds must be >= 0, got "
                f"{self.grace_period_seconds}"
            )
        if not 0.0 < self.bid <= 1.0:
            raise ValueError(f"bid must lie in (0, 1], got {self.bid}")
        if not 0.0 <= self.capacity_shortage_rate <= 1.0:
            raise ValueError(
                f"capacity_shortage_rate must lie in [0, 1], got "
                f"{self.capacity_shortage_rate}"
            )
        if self.brownout_mtbb_seconds is not None and self.brownout_mtbb_seconds <= 0:
            raise ValueError(
                f"brownout_mtbb_seconds must be positive, got "
                f"{self.brownout_mtbb_seconds}"
            )
        if self.brownout_duration_seconds <= 0:
            raise ValueError(
                f"brownout_duration_seconds must be positive, got "
                f"{self.brownout_duration_seconds}"
            )
        if self.api_rate_limit is not None and self.api_rate_limit < 1:
            raise ValueError(
                f"api_rate_limit must be >= 1, got {self.api_rate_limit}"
            )
        if self.api_rate_window_seconds <= 0:
            raise ValueError(
                f"api_rate_window_seconds must be positive, got "
                f"{self.api_rate_window_seconds}"
            )
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown_seconds <= 0:
            raise ValueError(
                f"breaker_cooldown_seconds must be positive, got "
                f"{self.breaker_cooldown_seconds}"
            )
        if self.risk_aversion < 0:
            raise ValueError(
                f"risk_aversion must be >= 0, got {self.risk_aversion}"
            )

    @property
    def brownouts_enabled(self) -> bool:
        return self.brownout_mtbb_seconds is not None

    def effective_price(self, raw_price: float) -> float:
        """Raw price plus the preemption-risk premium, capped at on-demand.

        A spot VM-hour is only worth its discount if the work survives;
        the premium ``1 + risk_aversion × preemptions/hour`` folds the
        expected rework into the price the online simulator scores with.
        """
        premium = 1.0 + self.risk_aversion * self.preempt_rate_per_hour
        return min(_PRICE_CEIL, raw_price * premium)

    def market(self) -> "SpotMarket":
        return SpotMarket(self)

    def breaker(self) -> "CircuitBreaker":
        return CircuitBreaker(
            threshold=self.breaker_threshold,
            cooldown_seconds=self.breaker_cooldown_seconds,
            seed=self.seed,
        )


class SpotMarket:
    """The seeded environment processes of the hostile cloud (stateful;
    one per engine run, picklable for durability snapshots)."""

    def __init__(self, config: SpotConfig) -> None:
        self.config = config
        self._price_cache: dict[int, float] = {}
        self._shortage_cache: dict[int, bool] = {}
        self._preempt_rng = make_rng(config.seed, "spot-preempt")
        self._brownout_rng = make_rng(config.seed, "spot-brownout")
        self.preemptions_drawn = 0

    # -- price process ------------------------------------------------------

    def bucket(self, now: float) -> int:
        return int(now // self.config.price_interval_seconds)

    def price_in_bucket(self, bucket: int) -> float:
        """Spot price during *bucket* (bucket-pure: depends only on the
        seed and the bucket index, so query order cannot perturb it)."""
        price = self._price_cache.get(bucket)
        if price is None:
            cfg = self.config
            rng = make_rng(cfg.seed, f"spot-price:{bucket}")
            if cfg.price_volatility > 0:
                sigma = cfg.price_volatility
                # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2) = price_mean.
                mu = math.log(cfg.price_mean) - 0.5 * sigma * sigma
                price = float(rng.lognormal(mu, sigma))
            else:
                price = cfg.price_mean
            price = min(_PRICE_CEIL, max(_PRICE_FLOOR, price))
            self._price_cache[bucket] = price
        return price

    def price_at(self, now: float) -> float:
        return self.price_in_bucket(self.bucket(now))

    def first_bid_crossing(
        self, bid: float, start: float, horizon: float
    ) -> float | None:
        """First time strictly after *start* the price exceeds *bid*,
        scanning forward bucket by bucket up to *horizon* (bounded)."""
        if bid >= _PRICE_CEIL:
            return None  # prices are clipped at on-demand; no crossing
        interval = self.config.price_interval_seconds
        first = self.bucket(start) + 1
        last = min(self.bucket(horizon), first + _MAX_BID_SCAN)
        for b in range(first, last + 1):
            if self.price_in_bucket(b) > bid:
                return b * interval
        return None

    # -- capacity shortage --------------------------------------------------

    def capacity_short(self, now: float) -> bool:
        """Is spot capacity exhausted (InsufficientCapacity) right now?
        Bucket-pure like the price, so it replays identically."""
        rate = self.config.capacity_shortage_rate
        if rate <= 0.0:
            return False
        bucket = self.bucket(now)
        short = self._shortage_cache.get(bucket)
        if short is None:
            rng = make_rng(self.config.seed, f"spot-capacity:{bucket}")
            short = bool(rng.random() < rate)
            self._shortage_cache[bucket] = short
        return short

    # -- preemption process -------------------------------------------------

    def time_to_preemption(self) -> float:
        """Seconds until a freshly leased spot VM is reclaimed (capacity
        churn, independent of the bid); ``inf`` when reclaim is off."""
        if self.config.preempt_rate_per_hour <= 0:
            return float("inf")
        self.preemptions_drawn += 1
        mean = 3_600.0 / self.config.preempt_rate_per_hour
        return float(self._preempt_rng.exponential(mean))

    def preemption_at(self, now: float, bid: float) -> float | None:
        """Absolute preemption-notice time of a spot VM leased at *now*
        under *bid*: the earlier of its capacity reclaim and the first
        bucket whose price out-bids it; ``None`` = never (within scan)."""
        reclaim = now + self.time_to_preemption()
        horizon = reclaim if math.isfinite(reclaim) else (
            now + _MAX_BID_SCAN * self.config.price_interval_seconds
        )
        crossing = self.first_bid_crossing(bid, now, horizon)
        if crossing is not None and crossing < reclaim:
            return crossing
        if math.isfinite(reclaim):
            return reclaim
        return None

    # -- brownouts ----------------------------------------------------------

    def next_brownout_in(self) -> float:
        """Seconds until the next control-plane brownout window opens."""
        assert self.config.brownouts_enabled
        return float(
            self._brownout_rng.exponential(self.config.brownout_mtbb_seconds)
        )

    def brownout_duration(self) -> float:
        return float(
            self._brownout_rng.exponential(self.config.brownout_duration_seconds)
        )


class CircuitBreaker:
    """Three-state breaker guarding the provisioning path.

    CLOSED: requests pass; ``breaker_threshold`` *consecutive* failures
    open it.  OPEN: requests are skipped until the cooldown (drawn from a
    :class:`RetryPolicy` with decorrelated jitter, growing per reopen)
    elapses, then one HALF_OPEN probe passes.  A probe success closes
    the breaker and resets the backoff; a probe failure reopens it with
    a longer cooldown.  Deterministic per seed; picklable.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    #: Class-level default so instances pickled before this attribute
    #: existed (durability snapshots) unpickle with a sane value.
    _probe_outstanding = False

    def __init__(
        self,
        threshold: int,
        cooldown_seconds: float,
        seed: int,
        salt: str = "spot-breaker",
    ) -> None:
        self.threshold = threshold
        base = cooldown_seconds
        self.policy = RetryPolicy(
            base_delay=base,
            max_delay=16.0 * base,
            multiplier=2.0,
            max_attempts=1_000_000,  # the breaker never gives up on its own
        )
        self.state_name = self.CLOSED
        self.consecutive_failures = 0
        self.opens = 0
        self.closes = 0
        self._retry = RetryState()
        self._rng = make_rng(seed, salt)
        self._probe_outstanding = False
        #: Last state transition ("open" / "half_open" / "closed"), set by
        #: the methods below and consumed (cleared) by the engine so each
        #: transition is traced exactly once.
        self.last_transition: str | None = None

    def pop_transition(self) -> str | None:
        transition = self.last_transition
        self.last_transition = None
        return transition

    @property
    def blocked_until(self) -> float:
        return self._retry.blocked_until

    def allow(self, now: float) -> bool:
        """May a provisioning request pass at *now*?  An OPEN breaker
        whose cooldown has elapsed transitions to HALF_OPEN and lets
        exactly one probe through; further calls are refused until the
        probe resolves via :meth:`record_success`/:meth:`record_failure`
        (single-probe: concurrent callers cannot both slip past a
        half-open breaker)."""
        if self.state_name == self.OPEN:
            if self._retry.blocked(now):
                return False
            self.state_name = self.HALF_OPEN
            self.last_transition = self.HALF_OPEN
            self._probe_outstanding = True
            return True
        if self.state_name == self.HALF_OPEN and self._probe_outstanding:
            return False
        return True

    def record_failure(self, now: float) -> bool:
        """Book a control-plane failure; returns True when this opened
        (or reopened) the breaker."""
        self.consecutive_failures += 1
        self._probe_outstanding = False
        if self.state_name == self.HALF_OPEN:
            # The probe failed: reopen with a longer cooldown.
            self.state_name = self.OPEN
            self._retry.record_failure(now, self.policy, self._rng)
            self.opens += 1
            self.last_transition = self.OPEN
            return True
        if (
            self.state_name == self.CLOSED
            and self.consecutive_failures >= self.threshold
        ):
            self.state_name = self.OPEN
            self._retry.record_failure(now, self.policy, self._rng)
            self.opens += 1
            self.last_transition = self.OPEN
            return True
        return False

    def record_success(self) -> bool:
        """Book a successful request; returns True when this closed a
        half-open breaker."""
        self.consecutive_failures = 0
        self._probe_outstanding = False
        if self.state_name == self.HALF_OPEN:
            self.state_name = self.CLOSED
            self._retry.record_success()
            self.closes += 1
            self.last_transition = self.CLOSED
            return True
        return False


@dataclass(slots=True)
class SpotStats:
    """What the hostile cloud did to one run (all zero ⇒ no activity)."""

    #: Spot VMs leased (and the price-weighted sum for the mean price).
    spot_leases: int = 0
    spot_price_sum: float = 0.0
    #: Rounds whose spot demand was deferred because the price out-ran
    #: the active bid.
    bid_deferrals: int = 0
    #: InsufficientCapacity responses, and the VMs they denied.
    insufficient_capacity: int = 0
    spot_vms_denied: int = 0
    #: VMs that fell back from spot to on-demand (hedged provisioning).
    hedged_vms: int = 0
    #: Preemption lifecycle: notices issued, VMs actually reclaimed,
    #: running jobs killed by a reclaim.
    preempt_notices: int = 0
    preemptions: int = 0
    preempted_job_kills: int = 0
    #: Emergency checkpoints taken inside a grace window.
    grace_checkpoints: int = 0
    #: CPU·seconds lost to / saved from preemption kills.
    preempt_wasted_cpu_seconds: float = 0.0
    preempt_saved_cpu_seconds: float = 0.0
    #: Price-weighted charged seconds booked against spot instances.
    spot_charged_seconds: float = 0.0
    #: Control-plane degradation: brownout windows, their total length,
    #: lease calls rejected during them, and throttled (rate-limited)
    #: calls.
    brownouts: int = 0
    brownout_seconds: float = 0.0
    brownout_rejections: int = 0
    throttled_calls: int = 0
    #: Circuit breaker: opens (incl. reopens), closes, and provisioning
    #: rounds skipped while open.
    breaker_opens: int = 0
    breaker_closes: int = 0
    breaker_skips: int = 0
    #: Rounds where demand queued while provisioning was gated (breaker
    #: open or brownout) — the admission-control backpressure signal.
    backpressure_rounds: int = 0

    @property
    def any_activity(self) -> bool:
        return bool(
            self.spot_leases
            or self.bid_deferrals
            or self.insufficient_capacity
            or self.brownouts
            or self.throttled_calls
            or self.breaker_opens
        )

    @property
    def mean_spot_price(self) -> float:
        return self.spot_price_sum / self.spot_leases if self.spot_leases else 0.0

    def to_dict(self) -> dict:
        """JSON-safe export block (``"spot"`` key of the result export)."""
        return {
            "spot_leases": self.spot_leases,
            "mean_spot_price": self.mean_spot_price,
            "bid_deferrals": self.bid_deferrals,
            "insufficient_capacity": self.insufficient_capacity,
            "spot_vms_denied": self.spot_vms_denied,
            "hedged_vms": self.hedged_vms,
            "preempt_notices": self.preempt_notices,
            "preemptions": self.preemptions,
            "preempted_job_kills": self.preempted_job_kills,
            "grace_checkpoints": self.grace_checkpoints,
            "preempt_wasted_cpu_seconds": self.preempt_wasted_cpu_seconds,
            "preempt_saved_cpu_seconds": self.preempt_saved_cpu_seconds,
            "spot_charged_seconds": self.spot_charged_seconds,
            "brownouts": self.brownouts,
            "brownout_seconds": self.brownout_seconds,
            "brownout_rejections": self.brownout_rejections,
            "throttled_calls": self.throttled_calls,
            "breaker_opens": self.breaker_opens,
            "breaker_closes": self.breaker_closes,
            "breaker_skips": self.breaker_skips,
            "backpressure_rounds": self.backpressure_rounds,
        }

    def row(self) -> dict[str, object]:
        """Compact report-table row (CLI output)."""
        return {
            "spot_leases": self.spot_leases,
            "mean_price": round(self.mean_spot_price, 3),
            "preemptions": self.preemptions,
            "job_kills": self.preempted_job_kills,
            "grace_ckpts": self.grace_checkpoints,
            "hedged": self.hedged_vms,
            "insuff_cap": self.insufficient_capacity,
            "brownouts": self.brownouts,
            "throttled": self.throttled_calls,
            "breaker_opens": self.breaker_opens,
            "backpressure": self.backpressure_rounds,
        }
