"""Billing models.

The paper follows the (2013-era) Amazon EC2 on-demand cost model: VM usage
is charged in whole hours, rounded **up** from lease time to termination
time.  ``RV`` — the total charged VM seconds — doubles as the monetary
cost metric throughout the evaluation.
"""

from __future__ import annotations

import abc
import math

__all__ = ["BillingModel", "HourlyBilling", "HOUR"]

HOUR = 3_600.0


class BillingModel(abc.ABC):
    """Maps a VM's (lease, end) interval to charged seconds."""

    @abc.abstractmethod
    def charged_seconds(self, lease_time: float, end_time: float) -> float:
        """Charged seconds for a VM leased at *lease_time*, gone at *end_time*."""

    @abc.abstractmethod
    def remaining_paid(self, lease_time: float, now: float) -> float:
        """Seconds of already-paid time left before the next charging step.

        This is the quantity BestFit/WorstFit VM selection ranks on and the
        release rule consults (terminate when it approaches 0).
        """

    @abc.abstractmethod
    def next_boundary(self, lease_time: float, now: float) -> float:
        """Absolute time of the next charging boundary strictly after *now*.

        Strictness matters: boundary events reschedule themselves from the
        boundary instant, and an at-or-after contract would loop forever.
        """

    def completed_seconds(self, lease_time: float, end_time: float) -> float:
        """Charge for *provider-initiated* reclamation (spot preemption).

        EC2 spot semantics: the customer does not pay for the partial
        billing period the provider cut short, only for whole completed
        periods.  The conservative default charges like a normal
        termination; periodic models override with floor semantics.
        """
        return self.charged_seconds(lease_time, end_time)


class HourlyBilling(BillingModel):
    """Charge per started hour (EC2 on-demand, 2013 semantics).

    A VM leased at *t* and terminated at *t*+1 s costs one full hour; at
    *t*+3600 s exactly, also one hour (the boundary belongs to the expiring
    period); at *t*+3601 s, two hours.
    """

    def __init__(self, period: float = HOUR) -> None:
        if period <= 0:
            raise ValueError(f"billing period must be positive, got {period}")
        self.period = float(period)

    def charged_seconds(self, lease_time: float, end_time: float) -> float:
        if end_time < lease_time:
            raise ValueError(
                f"end_time {end_time} precedes lease_time {lease_time}"
            )
        used = end_time - lease_time
        periods = max(1, math.ceil(used / self.period - 1e-9))
        return periods * self.period

    def remaining_paid(self, lease_time: float, now: float) -> float:
        if now < lease_time:
            raise ValueError(f"now {now} precedes lease_time {lease_time}")
        used = now - lease_time
        into = used % self.period
        if into == 0 and used > 0:
            return 0.0
        return self.period - into

    def next_boundary(self, lease_time: float, now: float) -> float:
        if now < lease_time:
            raise ValueError(f"now {now} precedes lease_time {lease_time}")
        used = now - lease_time
        periods = math.floor(used / self.period + 1e-9) + 1
        return lease_time + periods * self.period

    def completed_seconds(self, lease_time: float, end_time: float) -> float:
        if end_time < lease_time:
            raise ValueError(
                f"end_time {end_time} precedes lease_time {lease_time}"
            )
        used = end_time - lease_time
        return math.floor(used / self.period + 1e-9) * self.period
