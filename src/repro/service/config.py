"""Service configuration: budgets, pacing, and durability knobs.

Everything here is frozen and JSON-serialisable so a config can ride in
a snapshot, be compared across restarts, and be rebuilt from CLI flags
without surprises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TenantBudget", "ServiceConfig", "DEFAULT_BUDGET"]


@dataclass(slots=True, frozen=True)
class TenantBudget:
    """Admission-control limits for one tenant.

    Parameters
    ----------
    max_queued_jobs:
        Hard cap on the tenant's queue depth; submissions beyond it shed
        with reason ``queue_full``.
    max_vm_hours:
        Lifetime VM-hour budget, charged *at admission* as
        ``procs × runtime / 3600`` (deterministic, so replay re-derives
        the same balance).  Exhaustion sheds with ``vm_hours_exhausted``.
    rate_per_round:
        Token-bucket refill: submissions the tenant may make per engine
        round, on average.  Refilled when a round runs (virtual time),
        never from the wall clock, so admission stays replayable.
    burst:
        Token-bucket capacity (instantaneous burst allowance).
    weight:
        Fair-share weight for the per-round VM split: tenants with
        queued demand divide the global cap in proportion to their
        weights via :func:`repro.alloc.split.largest_remainder`.  The
        default 1.0 for everyone is plain equal fair share.
    """

    max_queued_jobs: int = 256
    max_vm_hours: float = float("inf")
    rate_per_round: float = 64.0
    burst: float = 128.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")
        if self.max_queued_jobs < 1:
            raise ValueError(
                f"max_queued_jobs must be >= 1, got {self.max_queued_jobs}"
            )
        if self.max_vm_hours <= 0:
            raise ValueError(f"max_vm_hours must be > 0, got {self.max_vm_hours}")
        if self.rate_per_round <= 0:
            raise ValueError(
                f"rate_per_round must be > 0, got {self.rate_per_round}"
            )
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")

    def to_dict(self) -> dict:
        # Strict JSON has no Infinity; an unlimited VM-hour budget rides
        # in journal records and state exports as null.
        return {
            "max_queued_jobs": self.max_queued_jobs,
            "max_vm_hours": (
                None if self.max_vm_hours == float("inf") else self.max_vm_hours
            ),
            "rate_per_round": self.rate_per_round,
            "burst": self.burst,
            "weight": self.weight,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantBudget":
        hours = data.get("max_vm_hours")
        return cls(
            max_queued_jobs=int(data.get("max_queued_jobs", 256)),
            max_vm_hours=float("inf") if hours is None else float(hours),
            rate_per_round=float(data.get("rate_per_round", 64.0)),
            burst=float(data.get("burst", 128.0)),
            weight=float(data.get("weight", 1.0)),
        )


DEFAULT_BUDGET = TenantBudget()


@dataclass(slots=True, frozen=True)
class ServiceConfig:
    """How one service instance runs.

    Parameters
    ----------
    socket_path:
        Unix socket the asyncio server listens on.
    journal_dir:
        Directory of the append-only service journal (created on start;
        orphaned ``*.tmp`` debris is swept like the snapshot layer does).
    snapshot_dir:
        Optional :class:`~repro.durability.snapshot.SnapshotStore`
        directory — level 1 of the recovery ladder.  ``None`` replays
        the journal from the beginning on every start.
    max_total_vms:
        Shared provider cap all tenants compete under.
    round_virtual_step:
        Seconds of *virtual* time one engine round advances (the paper's
        20 s tick).  Virtual time, not the wall clock, stamps every
        journal record, which is what makes replay bit-identical.
    round_interval:
        Wall seconds between automatic rounds; ``0`` disables the timer
        so rounds run only on explicit ``{"op": "round"}`` requests
        (tests and the CI smoke drive rounds this way for determinism).
    scheduler:
        ``"portfolio"`` for per-tenant Algorithm 1, or a fixed portfolio
        member name (e.g. ``"ODX-UNICEF-FirstFit"``).
    selection_period:
        Portfolio re-selection period, in rounds (paper §6.4).
    seed:
        Base seed; each tenant's scheduler derives its own stream.
    snapshot_every_rounds:
        Snapshot the full service state every N rounds (needs
        ``snapshot_dir``); ``None`` disables periodic snapshots.
    kill_switch_path:
        When this file exists, provisioning halts (admissions continue;
        queues grow) — the operator's big red button.  ``None`` disables.
    max_tenants:
        Cap on concurrently open tenants; ``tenant_open`` beyond it is
        refused with ``tenant_limit``.
    default_budget:
        Budget applied to tenants that open without an explicit one.
    """

    socket_path: str
    journal_dir: str
    snapshot_dir: str | None = None
    max_total_vms: int = 64
    round_virtual_step: float = 20.0
    round_interval: float = 0.5
    scheduler: str = "portfolio"
    selection_period: int = 4
    seed: int = 0
    snapshot_every_rounds: int | None = None
    kill_switch_path: str | None = None
    max_tenants: int = 1024
    default_budget: TenantBudget = field(default=DEFAULT_BUDGET)

    def __post_init__(self) -> None:
        if self.max_total_vms < 1:
            raise ValueError(f"max_total_vms must be >= 1, got {self.max_total_vms}")
        if self.round_virtual_step <= 0:
            raise ValueError(
                f"round_virtual_step must be > 0, got {self.round_virtual_step}"
            )
        if self.round_interval < 0:
            raise ValueError(
                f"round_interval must be >= 0, got {self.round_interval}"
            )
        if self.selection_period < 1:
            raise ValueError(
                f"selection_period must be >= 1, got {self.selection_period}"
            )
        if self.snapshot_every_rounds is not None and self.snapshot_every_rounds < 1:
            raise ValueError(
                f"snapshot_every_rounds must be >= 1, got {self.snapshot_every_rounds}"
            )
        if self.max_tenants < 1:
            raise ValueError(f"max_tenants must be >= 1, got {self.max_tenants}")
