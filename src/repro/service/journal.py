"""The append-only service journal: a JSONL write-ahead log.

Same substrate as the obs tracer (one JSON object per line, append +
fsync, chaos fault points on every syscall that matters), but with WAL
semantics the tracer does not need: a record is **appended before it is
applied** to the in-memory service state, acks wait on an fsync, and
replaying the file through :meth:`ServiceState.apply
<repro.service.state.ServiceState.apply>` reconstructs the state
bit-identically after SIGKILL.

Envelope (schema ``JOURNAL_SCHEMA``)::

    {"v": 1, "seq": <monotonic int>, "kind": "...", "t": <virtual time>, ...}

Durability discipline:

* ``append`` writes the line with ``O_APPEND`` but does **not** fsync —
  the server group-commits one :meth:`flush` per event-loop batch and
  only acks clients after the flush covering their record.
* A crash can therefore leave a *torn last line* (partial write) or a
  few *unacked* trailing records; :func:`read_journal` tolerates the
  former and startup truncates it away, while the latter are replayed —
  an accepted-but-unacked submission survives, which is the safe side.
* Orphaned ``*.tmp`` debris (from snapshot writes sharing the dir) is
  swept on open, mirroring ``SnapshotStore.sweep_debris``.

Chaos: ``service.journal.append`` and ``service.journal.flush`` are
fault points (:mod:`repro.chaos.hooks`), so a fault plan can make the
journal fail exactly like a full or dying disk; the server's journal
breaker then sheds admissions instead of crashing.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.chaos.hooks import fault_point

__all__ = [
    "JOURNAL_SCHEMA",
    "JOURNAL_NAME",
    "JournalError",
    "ServiceJournal",
    "read_journal",
]

#: Bump when the envelope or any record shape changes incompatibly.
JOURNAL_SCHEMA = 1
JOURNAL_NAME = "journal.jsonl"


class JournalError(RuntimeError):
    """The journal could not be appended to or flushed."""


def read_journal(path: Path | str) -> tuple[list[dict], int]:
    """Tolerantly read *path*: ``(records, valid_bytes)``.

    Stops at the first torn or non-JSON line (the tail a SIGKILL mid
    ``write(2)`` leaves) and at the first sequence discontinuity;
    ``valid_bytes`` is the offset the file should be truncated to so
    appending can resume on a clean line boundary.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    raw = path.read_bytes()
    records: list[dict] = []
    valid = 0
    expected_seq = 1
    offset = 0
    for line in raw.split(b"\n"):
        end = offset + len(line) + 1  # + the newline
        if end > len(raw):
            break  # no trailing newline: torn final line
        if line:
            try:
                record = json.loads(line)
            except ValueError:
                break
            if not isinstance(record, dict) or record.get("seq") != expected_seq:
                break
            records.append(record)
            expected_seq += 1
        valid = end
        offset = end
    return records, valid


class ServiceJournal:
    """Appender over one ``journal.jsonl`` (single writer, single dir)."""

    def __init__(self, directory: Path | str) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / JOURNAL_NAME
        self.swept_tmp = self._sweep_debris()
        records, valid = read_journal(self.path)
        if self.path.exists() and valid < self.path.stat().st_size:
            # Torn tail from a previous crash: cut back to the last
            # complete record so our appends land on a line boundary.
            with open(self.path, "rb+") as fh:
                fh.truncate(valid)
                fh.flush()
                os.fsync(fh.fileno())
        #: Sequence of the last record on disk; appends continue from here
        #: across restarts so replay never sees a discontinuity.
        self.appended_seq = records[-1]["seq"] if records else 0
        self.flushed_seq = self.appended_seq
        self.appends = 0
        self.flushes = 0
        self._fd: int | None = None
        #: Set when a partial append could not be truncated away: the
        #: file tail is torn and further appends would land after it,
        #: unreadable to replay — so the journal refuses them instead.
        self._torn = False

    # -- internals -----------------------------------------------------------

    def _sweep_debris(self) -> int:
        """Unlink orphaned ``*.tmp`` files a crashed writer left behind."""
        swept = 0
        for tmp in sorted(self.directory.glob("*.tmp")):
            try:
                tmp.unlink()
                swept += 1
            except OSError:  # pragma: no cover - racing cleaner
                pass
        return swept

    def _ensure_fd(self) -> int:
        if self._fd is None:
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        return self._fd

    # -- the WAL interface ---------------------------------------------------

    @property
    def lag(self) -> int:
        """Records appended but not yet covered by an fsync."""
        return self.appended_seq - self.flushed_seq

    def append(self, record: dict) -> int:
        """Write *record* (adding the envelope), return its sequence.

        Raises :class:`JournalError` on any I/O failure — including an
        injected chaos fault — *without* consuming a sequence number, so
        the caller can shed and retry later with a dense journal.

        ``write(2)`` may land only part of the line (an ``ENOSPC``
        boundary, say): the loop below keeps writing the rest, and a
        failure mid-record truncates the torn bytes back to the last
        record boundary so the *next* append still lands on a clean
        line.  If even that repair fails, the journal marks itself torn
        and refuses further appends — anything written after a torn line
        would be unreadable to replay, silently un-doing acked records.
        """
        if self._torn:
            raise JournalError("journal tail is torn and could not be repaired")
        seq = self.appended_seq + 1
        payload = dict(record)
        payload["v"] = JOURNAL_SCHEMA
        payload["seq"] = seq
        line = (
            json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        try:
            fd = self._ensure_fd()
            fault_point("service.journal.append", self.path)
            boundary = os.fstat(fd).st_size
        except OSError as exc:
            raise JournalError(f"journal append failed: {exc}") from exc
        written = 0
        try:
            while written < len(line):
                n = os.write(fd, line[written:])
                if n <= 0:
                    raise OSError("write(2) made no progress")
                written += n
        except OSError as exc:
            if written:
                self._repair_tail(fd, boundary)
            raise JournalError(f"journal append failed: {exc}") from exc
        self.appended_seq = seq
        self.appends += 1
        return seq

    def _repair_tail(self, fd: int, boundary: int) -> None:
        """Cut a partial append back to the last record *boundary*."""
        try:
            os.ftruncate(fd, boundary)
        except OSError:
            self._torn = True

    def flush(self) -> None:
        """fsync everything appended so far (the group-commit point)."""
        if self._fd is None or self.flushed_seq == self.appended_seq:
            return
        try:
            fault_point("service.journal.flush", self.path)
            os.fsync(self._fd)
        except OSError as exc:
            raise JournalError(f"journal flush failed: {exc}") from exc
        self.flushed_seq = self.appended_seq
        self.flushes += 1

    def close(self) -> None:
        if self._fd is not None:
            try:
                self.flush()
            finally:
                os.close(self._fd)
                self._fd = None
