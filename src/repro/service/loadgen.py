"""The load generator: hundreds of seeded synthetic tenants.

Two pieces:

* :class:`ServiceClient` — a tiny blocking unix-socket client speaking
  the newline-delimited JSON protocol.  Tests, the CI smoke driver, and
  the load generator all talk to the service through it.
* :func:`run_loadgen` — replays a seeded stream of tenants and jobs
  against a running service, interleaving explicit engine rounds, and
  reports sustained submissions/sec plus the shed breakdown.  The
  stream is a pure function of the seed, which is what lets the CI
  smoke run the *same* stream twice (one SIGKILLed, one uninterrupted)
  and demand bit-identical replayed state.

``repro service loadgen --spawn`` wraps this with a child service
process so one command produces ``BENCH_service.json``.
"""

from __future__ import annotations

import json
import socket
import time

from repro.sim.rng import make_rng

__all__ = ["ServiceClient", "run_loadgen", "synthetic_jobs"]


class ServiceClient:
    """Blocking client for one service socket (one connection, reused)."""

    def __init__(self, socket_path: str, timeout: float = 30.0) -> None:
        self.socket_path = socket_path
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._file = None

    def connect(self, retries: int = 50, delay: float = 0.1) -> None:
        """Connect, retrying while the service is still starting up."""
        last: OSError | None = None
        for _ in range(max(1, retries)):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            try:
                sock.connect(self.socket_path)
            except OSError as exc:
                sock.close()
                last = exc
                time.sleep(delay)
                continue
            self._sock = sock
            self._file = sock.makefile("rwb")
            return
        raise ConnectionError(
            f"could not connect to service at {self.socket_path}: {last}"
        )

    def request(self, payload: dict) -> dict:
        if self._file is None:
            self.connect()
        assert self._file is not None
        self._file.write((json.dumps(payload) + "\n").encode("utf-8"))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line)

    # -- convenience wrappers ------------------------------------------------

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def open(self, tenant: str, budget: dict | None = None) -> dict:
        payload: dict = {"op": "open", "tenant": tenant}
        if budget is not None:
            payload["budget"] = budget
        return self.request(payload)

    def submit(self, tenant: str, job_id: int, runtime: float, procs: int) -> dict:
        return self.request(
            {
                "op": "submit",
                "tenant": tenant,
                "job": {"job_id": job_id, "runtime": runtime, "procs": procs},
            }
        )

    def round(self) -> dict:
        return self.request({"op": "round"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def metrics(self) -> str:
        return self.request({"op": "metrics"})["text"]

    def drain(self) -> dict:
        return self.request({"op": "drain"})

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:  # pragma: no cover
                pass
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None


def synthetic_jobs(seed: int, tenants: int, jobs_per_tenant: int, hot: int):
    """The seeded submission stream: ``(tenant, job_id, runtime, procs)``.

    Tenants are interleaved (every tenant submits its *k*-th job before
    any tenant submits its *k+1*-th) so queue pressure builds evenly;
    the first *hot* tenants submit 4× the jobs, which is what pushes
    them over their budgets in the overload scenario.
    """
    rng = make_rng(seed, "service-loadgen")
    counts = [
        jobs_per_tenant * (4 if i < hot else 1) for i in range(tenants)
    ]
    job_id = 0
    for k in range(max(counts, default=0)):
        for i in range(tenants):
            if k >= counts[i]:
                continue
            job_id += 1
            runtime = float(round(float(rng.uniform(10.0, 600.0)), 3))
            procs = int(rng.integers(1, 5))
            yield f"t{i:04d}", job_id, runtime, procs


def run_loadgen(
    socket_path: str,
    tenants: int = 50,
    jobs_per_tenant: int = 20,
    seed: int = 0,
    rounds_every: int = 100,
    hot: int = 0,
    budget: dict | None = None,
) -> dict:
    """Drive a running service with the seeded stream; return the report.

    ``rounds_every`` interleaves one explicit engine round per that many
    submissions (0 leaves round pacing entirely to the service's own
    timer).  The report's ``submissions_per_sec`` counts every submit
    round-trip, accepted or shed — it measures the admission path.
    """
    client = ServiceClient(socket_path)
    client.connect()
    try:
        for i in range(tenants):
            response = client.open(f"t{i:04d}", budget=budget)
            if not response.get("ok"):
                raise RuntimeError(
                    f"tenant open failed: {response.get('reason')}"
                )
        submitted = accepted = 0
        shed_by_reason: dict[str, int] = {}
        started = time.perf_counter()
        for tenant, job_id, runtime, procs in synthetic_jobs(
            seed, tenants, jobs_per_tenant, hot
        ):
            response = client.submit(tenant, job_id, runtime, procs)
            submitted += 1
            if response.get("ok"):
                accepted += 1
            else:
                reason = response.get("reason", "unknown")
                shed_by_reason[reason] = shed_by_reason.get(reason, 0) + 1
            if rounds_every and submitted % rounds_every == 0:
                client.round()
        elapsed = time.perf_counter() - started
        stats = client.stats()
    finally:
        client.close()
    shed = submitted - accepted
    return {
        "tenants": tenants,
        "jobs_per_tenant": jobs_per_tenant,
        "hot_tenants": hot,
        "seed": seed,
        "rounds_every": rounds_every,
        "submitted": submitted,
        "accepted": accepted,
        "shed": shed,
        "shed_by_reason": dict(sorted(shed_by_reason.items())),
        "elapsed_sec": round(elapsed, 6),
        "submissions_per_sec": (
            round(submitted / elapsed, 2) if elapsed > 0 else None
        ),
        "rounds": stats["state"]["rounds"],
        "virtual_now": stats["state"]["virtual_now"],
        "vms_in_use": stats["state"]["vms_in_use"],
        "journal_appended_seq": stats["journal"]["appended_seq"],
    }
