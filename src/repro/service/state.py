"""Deterministic service state: tenants, admission, and engine rounds.

The state machine at the heart of the service.  Every mutation enters
through :meth:`ServiceState.apply`, driven by exactly the records the
journal holds — the live server appends a record and then applies it;
replay reads the file and applies the same records through the same
code path.  Bit-identical recovery is therefore not a property someone
has to maintain by hand: there is only one mutation path.

Determinism rules the whole module:

* Time is **virtual** — ``virtual_now`` advances only when a ``round``
  record applies (``round_virtual_step`` per round, the paper's 20 s
  tick); submissions are stamped with the virtual time of admission.
* Token buckets refill per *round*, not per wall second.
* Tenants are always iterated in sorted-name order.
* Each tenant's scheduler (Algorithm 1 or a fixed policy) derives its
  seed from the service seed and the tenant name.

Admission control is two-phase: :meth:`ServiceState.admit` is a *pure*
check returning a typed :class:`AdmissionDecision`; the server journals
the resulting ``submit`` or ``shed`` record and applies it.  Replay
never re-runs admission — it applies recorded outcomes — so a replayed
state cannot diverge on a borderline decision.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.alloc.split import largest_remainder
from repro.cloud.profile import VMSnapshot, profile_from_vms
from repro.core.scheduler import FixedScheduler, PortfolioScheduler, Scheduler
from repro.policies.base import IdleVM, SchedContext
from repro.policies.combined import policy_by_name
from repro.service.config import ServiceConfig, TenantBudget
from repro.sim.clock import VirtualCostClock
from repro.workload.job import Job

__all__ = [
    "STATE_SCHEMA",
    "AdmissionDecision",
    "TenantState",
    "ServiceState",
    "SHED_UNKNOWN_TENANT",
    "SHED_QUEUE_FULL",
    "SHED_VM_HOURS",
    "SHED_RATE_LIMITED",
    "SHED_TENANT_LIMIT",
    "SHED_DRAINING",
    "SHED_JOURNAL",
    "SHED_REASONS",
]

#: Version of the canonical ``to_dict`` export (CI diffs depend on it).
STATE_SCHEMA = 1

BILLING_PERIOD = 3_600.0

# -- typed shed reasons -------------------------------------------------------

SHED_UNKNOWN_TENANT = "unknown_tenant"
SHED_QUEUE_FULL = "queue_full"
SHED_VM_HOURS = "vm_hours_exhausted"
SHED_RATE_LIMITED = "rate_limited"
SHED_TENANT_LIMIT = "tenant_limit"
SHED_DRAINING = "draining"
#: Journal unavailable (I/O failure or open breaker).  The one reason
#: that cannot itself be journaled; counted in memory only.
SHED_JOURNAL = "journal_unavailable"

SHED_REASONS = (
    SHED_UNKNOWN_TENANT,
    SHED_QUEUE_FULL,
    SHED_VM_HOURS,
    SHED_RATE_LIMITED,
    SHED_TENANT_LIMIT,
    SHED_DRAINING,
    SHED_JOURNAL,
)


@dataclass(slots=True, frozen=True)
class AdmissionDecision:
    """Outcome of one admission check: accepted, or shed with a reason."""

    accepted: bool
    reason: str | None = None


@dataclass(slots=True)
class _VMLease:
    """One leased slot of the shared provider (single-core VM)."""

    vm_id: int
    lease_t: float
    busy_until: float = -1.0  # -1: idle
    job_id: int | None = None

    def is_busy(self, now: float) -> bool:
        return self.busy_until > now


@dataclass(slots=True)
class TenantState:
    """One tenant: its budget, queue, fleet slice, and counters."""

    name: str
    budget: TenantBudget
    queue: list[Job] = field(default_factory=list)
    tokens: float = 0.0
    vm_hours_used: float = 0.0
    accepted: int = 0
    started: int = 0
    completed: int = 0
    shed: dict[str, int] = field(default_factory=dict)
    vms: list[_VMLease] = field(default_factory=list)

    def idle_vms(self, now: float) -> list[_VMLease]:
        return [vm for vm in self.vms if not vm.is_busy(now)]

    def busy_vms(self, now: float) -> list[_VMLease]:
        return [vm for vm in self.vms if vm.is_busy(now)]

    def to_dict(self) -> dict:
        return {
            "budget": self.budget.to_dict(),
            "queue": [
                [job.job_id, job.submit_time, job.runtime, job.procs]
                for job in self.queue
            ],
            "tokens": self.tokens,
            "vm_hours_used": self.vm_hours_used,
            "accepted": self.accepted,
            "started": self.started,
            "completed": self.completed,
            "shed": dict(sorted(self.shed.items())),
            "vms": [
                [vm.vm_id, vm.lease_t, vm.busy_until, vm.job_id]
                for vm in sorted(self.vms, key=lambda v: v.vm_id)
            ],
        }


def _tenant_seed(base_seed: int, name: str) -> int:
    """A stable per-tenant seed (independent of open order)."""
    return (int(base_seed) ^ zlib.crc32(name.encode("utf-8"))) & 0xFFFFFFFF


class ServiceState:
    """The whole service, as reconstructible from the journal alone."""

    def __init__(self, config: ServiceConfig) -> None:
        self.max_total_vms = config.max_total_vms
        self.round_virtual_step = config.round_virtual_step
        self.scheduler_spec = config.scheduler
        self.selection_period = config.selection_period
        self.seed = config.seed
        self.default_budget = config.default_budget
        self.max_tenants = config.max_tenants

        self.tenants: dict[str, TenantState] = {}
        self.virtual_now = 0.0
        self.rounds = 0
        self.kill_switch = False
        self.draining = False
        self._next_vm_id = 1
        #: Sheds that could not be attributed to an open tenant
        #: (``unknown_tenant``) or not journaled (``journal_unavailable``).
        self.unattributed_shed: dict[str, int] = {}
        self._schedulers: dict[str, Scheduler] = {}

    # -- derived views -------------------------------------------------------

    def total_rented(self) -> int:
        return sum(len(t.vms) for t in self.tenants.values())

    def _scheduler_for(self, name: str) -> Scheduler:
        scheduler = self._schedulers.get(name)
        if scheduler is None:
            seed = _tenant_seed(self.seed, name)
            if self.scheduler_spec == "portfolio":
                scheduler = PortfolioScheduler(
                    selection_period=self.selection_period,
                    time_constraint=0.2,
                    cost_clock=VirtualCostClock(0.010),
                    seed=seed,
                )
            else:
                scheduler = FixedScheduler(policy_by_name(self.scheduler_spec))
            self._schedulers[name] = scheduler
        return scheduler

    # -- admission (pure checks; the server journals the outcome) ------------

    def open_check(self, name: str) -> AdmissionDecision:
        if self.draining:
            return AdmissionDecision(False, SHED_DRAINING)
        if name in self.tenants:
            return AdmissionDecision(True)  # idempotent re-open, no record
        if len(self.tenants) >= self.max_tenants:
            return AdmissionDecision(False, SHED_TENANT_LIMIT)
        return AdmissionDecision(True)

    def admit(self, name: str, runtime: float, procs: int) -> AdmissionDecision:
        """May this submission enter *name*'s queue right now?"""
        if self.draining:
            return AdmissionDecision(False, SHED_DRAINING)
        tenant = self.tenants.get(name)
        if tenant is None:
            return AdmissionDecision(False, SHED_UNKNOWN_TENANT)
        if len(tenant.queue) >= tenant.budget.max_queued_jobs:
            return AdmissionDecision(False, SHED_QUEUE_FULL)
        if tenant.tokens < 1.0:
            return AdmissionDecision(False, SHED_RATE_LIMITED)
        cost = procs * runtime / BILLING_PERIOD
        if tenant.vm_hours_used + cost > tenant.budget.max_vm_hours:
            return AdmissionDecision(False, SHED_VM_HOURS)
        return AdmissionDecision(True)

    # -- the single mutation path --------------------------------------------

    def apply(self, record: dict) -> None:
        """Apply one journal record (live path and replay path alike)."""
        kind = record["kind"]
        if kind == "tenant_open":
            name = record["tenant"]
            if name not in self.tenants:
                budget = TenantBudget.from_dict(record.get("budget") or {})
                self.tenants[name] = TenantState(
                    name=name, budget=budget, tokens=budget.burst
                )
        elif kind == "tenant_close":
            self.tenants.pop(record["tenant"], None)
            self._schedulers.pop(record["tenant"], None)
        elif kind == "submit":
            tenant = self.tenants[record["tenant"]]
            job = Job(
                job_id=int(record["job_id"]),
                submit_time=float(record["t"]),
                runtime=float(record["runtime"]),
                procs=int(record["procs"]),
            )
            tenant.queue.append(job)
            tenant.tokens -= 1.0
            tenant.vm_hours_used += job.procs * job.runtime / BILLING_PERIOD
            tenant.accepted += 1
        elif kind == "shed":
            reason = record["reason"]
            tenant = self.tenants.get(record.get("tenant") or "")
            if tenant is not None:
                tenant.shed[reason] = tenant.shed.get(reason, 0) + 1
            else:
                self.unattributed_shed[reason] = (
                    self.unattributed_shed.get(reason, 0) + 1
                )
        elif kind == "round":
            self.run_round()
        elif kind == "kill_switch":
            self.kill_switch = bool(record["engaged"])
        elif kind == "drain":
            self.draining = True
        else:
            raise ValueError(f"unknown journal record kind {kind!r}")

    def shed_in_memory(self, name: str | None, reason: str) -> None:
        """Count a shed that could not be journaled (in-memory only —
        replay cannot reconstruct these; metrics still surface them)."""
        tenant = self.tenants.get(name or "")
        if tenant is not None and reason != SHED_JOURNAL:
            tenant.shed[reason] = tenant.shed.get(reason, 0) + 1
        else:
            self.unattributed_shed[reason] = (
                self.unattributed_shed.get(reason, 0) + 1
            )

    # -- the engine round ----------------------------------------------------

    def run_round(self) -> None:
        """One deterministic engine round over all tenants.

        Advance virtual time, refill token buckets, complete finished
        jobs, then — tenant by tenant in sorted order — let the tenant's
        scheduler provision (fair-share + global cap clamped, zero when
        the kill switch is engaged) and allocate idle VMs to queued jobs
        via the exact :meth:`CombinedPolicy.allocate
        <repro.policies.combined.CombinedPolicy.allocate>` the batch
        engine uses.
        """
        self.rounds += 1
        self.virtual_now += self.round_virtual_step
        now = self.virtual_now

        names = sorted(self.tenants)
        for name in names:
            tenant = self.tenants[name]
            budget = tenant.budget
            tenant.tokens = min(budget.burst, tenant.tokens + budget.rate_per_round)
            # Completions: jobs whose runtime elapsed free their VMs.
            finished_jobs: set[int] = set()
            for vm in tenant.vms:
                if vm.job_id is not None and not vm.is_busy(now):
                    finished_jobs.add(vm.job_id)
                    vm.job_id = None
                    vm.busy_until = -1.0
            tenant.completed += len(finished_jobs)

        # Weighted fair share via the same largest-remainder splitter the
        # fractional-fleet layer uses for per-policy partitions: tenants
        # with queued demand divide the global cap in proportion to their
        # budget weights (all 1.0 by default — plain fair share), and the
        # max(1, ...) floor keeps every demanding tenant schedulable even
        # when tenants outnumber VMs (the per-tenant scheduler still
        # clamps against real global headroom).
        demanding = [n for n in names if self.tenants[n].queue]
        shares = (
            dict(
                zip(
                    demanding,
                    largest_remainder(
                        self.max_total_vms,
                        [self.tenants[n].budget.weight for n in demanding],
                        seed=self.seed,
                    ),
                )
            )
            if demanding
            else {}
        )
        for name in names:
            tenant = self.tenants[name]
            if not tenant.queue:
                # No demand: idle VMs are released at the round boundary
                # (the portfolio policies' default keep rule).
                tenant.vms = tenant.busy_vms(now)
                continue
            self._schedule_tenant(tenant, now, max(1, shares[name]))

    def _schedule_tenant(self, tenant: TenantState, now: float, share: int) -> None:
        cap = min(share, self.max_total_vms)
        profile = profile_from_vms(
            now,
            [
                VMSnapshot(
                    vm_id=vm.vm_id,
                    lease_time=vm.lease_t,
                    ready_time=vm.lease_t,  # service VMs boot instantly
                    busy_until=vm.busy_until,
                )
                for vm in sorted(tenant.vms, key=lambda v: v.vm_id)
            ],
            max_vms=cap,
            boot_delay=0.0,
            billing_period=BILLING_PERIOD,
        )
        waits = [now - job.submit_time for job in tenant.queue]
        runtimes = [job.runtime for job in tenant.queue]
        policy = self._scheduler_for(tenant.name).active_policy(
            self.rounds, tenant.queue, waits, runtimes, profile
        )

        busy = len(tenant.busy_vms(now))
        idle = len(tenant.vms) - busy
        ctx = SchedContext(
            now=now,
            queue=tenant.queue,
            waits=waits,
            runtimes=runtimes,
            rented=len(tenant.vms),
            available=idle,
            busy=busy,
            max_vms=cap,
        )
        if not self.kill_switch:
            global_headroom = self.max_total_vms - self.total_rented()
            n_new = min(policy.new_vms(ctx), max(0, global_headroom))
            for _ in range(n_new):
                tenant.vms.append(_VMLease(vm_id=self._next_vm_id, lease_t=now))
                self._next_vm_id += 1

        idle_pool = sorted(tenant.idle_vms(now), key=lambda v: v.vm_id)
        if idle_pool:
            idle_view = [
                IdleVM(
                    vm_id=vm.vm_id,
                    remaining_paid=BILLING_PERIOD
                    - ((now - vm.lease_t) % BILLING_PERIOD),
                )
                for vm in idle_pool
            ]
            alloc_ctx = SchedContext(
                now=now,
                queue=tenant.queue,
                waits=waits,
                runtimes=runtimes,
                rented=len(tenant.vms),
                available=len(idle_pool),
                busy=len(tenant.vms) - len(idle_pool),
                max_vms=cap,
            )
            by_id = {vm.vm_id: vm for vm in idle_pool}
            started: list[int] = []
            for allocation in policy.allocate(alloc_ctx, idle_view, BILLING_PERIOD):
                job = tenant.queue[allocation.queue_index]
                for vm_id in allocation.vm_ids:
                    lease = by_id[vm_id]
                    lease.busy_until = now + job.runtime
                    lease.job_id = job.job_id
                started.append(allocation.queue_index)
                tenant.started += 1
            for qidx in sorted(started, reverse=True):
                del tenant.queue[qidx]

    # -- canonical export ----------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical JSON-able view; the CI smoke diffs two of these."""
        return {
            "schema": STATE_SCHEMA,
            "virtual_now": self.virtual_now,
            "rounds": self.rounds,
            "kill_switch": self.kill_switch,
            "draining": self.draining,
            "vms_in_use": self.total_rented(),
            "unattributed_shed": dict(sorted(self.unattributed_shed.items())),
            "tenants": {
                name: self.tenants[name].to_dict() for name in sorted(self.tenants)
            },
        }

    # -- replay ---------------------------------------------------------------

    @classmethod
    def replay(
        cls,
        records: list[dict],
        config: ServiceConfig,
        base: "ServiceState | None" = None,
        after_seq: int = 0,
    ) -> "ServiceState":
        """Reconstruct a state by applying *records* in journal order.

        ``base``/``after_seq`` resume from a snapshot (level 1 of the
        recovery ladder): records at or below *after_seq* are skipped
        because the snapshot already contains their effects.
        """
        state = base if base is not None else cls(config)
        for record in records:
            if record["seq"] <= after_seq:
                continue
            state.apply(record)
        return state
