"""The asyncio service: unix-socket API, group commit, drain, recovery.

One process, one event loop, one journal writer.  Requests are
newline-delimited JSON objects; every request gets exactly one JSON
response line.  The single-threaded loop is what makes the WAL
discipline trivial to honour: ``append → apply → group-flush → ack``
happens in program order with no locking, so journal order *is* apply
order and an acked submission is always on disk.

Operations::

    {"op": "ping"}
    {"op": "open", "tenant": "...", "budget": {...}?}
    {"op": "submit", "tenant": "...", "job": {"job_id", "runtime", "procs"}}
    {"op": "round"}                      # run one engine round now
    {"op": "stats"}                      # canonical state + journal view
    {"op": "metrics"}                    # Prometheus text
    {"op": "close", "tenant": "..."}
    {"op": "drain"}                      # graceful shutdown (acked first)

Lifecycle:

* **Startup** — sweep journal ``.tmp`` debris, truncate a torn journal
  tail, then climb the recovery ladder: restore the newest verified
  snapshot (if a snapshot dir is configured) and replay only the
  journal suffix past it, else replay the whole journal.
* **SIGTERM / SIGINT / ``drain``** — stop admissions, finish the round
  in flight, journal a ``drain`` record, flush, snapshot, exit with
  :data:`~repro.exit_codes.EX_DRAINED` (or
  :data:`~repro.exit_codes.EX_KILL_SWITCH` when the kill switch was
  engaged at drain time, so the operator knows capacity is still
  halted).
* **Kill switch** — the file at ``kill_switch_path`` is polled at every
  round; a toggle is *journaled* before it takes effect, which keeps
  replay bit-identical even across engage/clear cycles.
* **Journal failure** — appends are guarded by a circuit breaker
  (:class:`~repro.cloud.spot.CircuitBreaker`, its own RNG salt).  The
  two failure modes are deliberately distinct:

  - **Append failed** (I/O error or open breaker): nothing was written
    and nothing was applied, so the request is *shed* with the
    ``journal_unavailable`` reason — the service never acks a write it
    did not make.
  - **Flush failed** (the record is appended *and* applied, only the
    covering fsync is owed): the server retries the fsync a few times
    and, if it keeps failing, acks **accepted-pending**
    (``{"ok": true, "durable": false}``).  The record is real — replay
    resurrects it and budgets were charged — so answering "shed" would
    contradict both the journal and the state; the next successful
    group commit (or the drain flush) makes it durable.

  The auto-round loop likewise *skips* rounds while the journal is
  unavailable (counted in ``rounds_skipped``) rather than dying; the
  service degrades, it never crashes.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from pathlib import Path

from repro.cloud.spot import CircuitBreaker
from repro.durability.snapshot import SnapshotConfig, SnapshotError, SnapshotStore
from repro.exit_codes import EX_DRAINED, EX_KILL_SWITCH
from repro.service.config import ServiceConfig, TenantBudget
from repro.service.journal import JournalError, ServiceJournal, read_journal
from repro.service.metrics import service_prometheus_text
from repro.service.state import SHED_JOURNAL, ServiceState

__all__ = ["ServiceServer", "run_service"]

#: Journal-breaker tuning: 3 consecutive append/flush failures open it;
#: probes resume after ~2 s (decorrelated jitter, wall clock — breaker
#: state is availability machinery, never journaled state).
_BREAKER_THRESHOLD = 3
_BREAKER_COOLDOWN = 2.0

#: Bounded fsync retries for a record that is already appended and
#: applied (the accepted-pending window): a transient flush fault heals
#: inside one request; a persistent one degrades to ``durable: false``.
_FLUSH_ATTEMPTS = 3
_FLUSH_RETRY_DELAY = 0.05


class ServiceServer:
    """One service instance (construct, then ``asyncio.run(server.serve())``)."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.journal = ServiceJournal(config.journal_dir)
        self.store: SnapshotStore | None = None
        if config.snapshot_dir is not None:
            self.store = SnapshotStore(
                SnapshotConfig(directory=config.snapshot_dir, interval_seconds=None)
            )
        self.recovered_records = 0
        self.recovered_from_snapshot = False
        self.state = self._recover()
        self.breaker = CircuitBreaker(
            threshold=_BREAKER_THRESHOLD,
            cooldown_seconds=_BREAKER_COOLDOWN,
            seed=config.seed,
            salt="service-journal",
        )
        self.exit_code = EX_DRAINED
        #: Auto-rounds skipped because the journal was unavailable
        #: (availability machinery, not journaled state — like the breaker).
        self.rounds_skipped = 0
        self._round_lock = asyncio.Lock()
        self._drain_event = asyncio.Event()
        self._flush_waiters: list[asyncio.Future] = []
        self._flush_scheduled = False
        self._snapshot_sequence = 0
        self._client_tasks: set[asyncio.Task] = set()

    # -- recovery ladder -----------------------------------------------------

    def _recover(self) -> ServiceState:
        records, _ = read_journal(self.journal.path)
        base: ServiceState | None = None
        after_seq = 0
        if self.store is not None and (self.store.directory / "MANIFEST.json").exists():
            try:
                payload, info = self.store.load_latest()
                base, after_seq = payload, info.events_processed
                self.recovered_from_snapshot = True
            except SnapshotError:
                # Every retained generation failed verification: fall back
                # to level 2 of the ladder, a full journal replay.
                base, after_seq = None, 0
        self.recovered_records = sum(1 for r in records if r["seq"] > after_seq)
        return ServiceState.replay(
            records, self.config, base=base, after_seq=after_seq
        )

    # -- journal plumbing ----------------------------------------------------

    def _journal_apply(self, kind: str, **payload) -> int:
        """Append one record and apply it (the WAL step, pre-flush)."""
        if not self.breaker.allow(time.monotonic()):
            raise JournalError("journal breaker open")
        record = {"kind": kind, "t": self.state.virtual_now, **payload}
        try:
            seq = self.journal.append(record)
        except JournalError:
            self.breaker.record_failure(time.monotonic())
            raise
        record["seq"] = seq
        self.state.apply(record)
        return seq

    async def _commit(self) -> None:
        """Group commit: await the fsync covering everything appended."""
        if self.journal.lag == 0:
            return
        loop = asyncio.get_running_loop()
        waiter: asyncio.Future = loop.create_future()
        self._flush_waiters.append(waiter)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            # call_soon, not inline: every handler that appended during
            # this loop iteration enqueues its waiter first, then one
            # fsync settles them all.
            loop.call_soon(self._do_flush)
        await waiter

    def _do_flush(self) -> None:
        self._flush_scheduled = False
        waiters, self._flush_waiters = self._flush_waiters, []
        try:
            self.journal.flush()
        except JournalError as exc:
            self.breaker.record_failure(time.monotonic())
            for waiter in waiters:
                if not waiter.done():
                    waiter.set_exception(exc)
            return
        self.breaker.record_success()
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    async def _commit_retrying(self) -> bool:
        """Group commit with bounded retries.

        Returns ``True`` when the fsync covered everything appended so
        far.  ``False`` means the caller's record is *accepted-pending*:
        appended and applied, fsync still owed — the next successful
        group commit (or the drain flush) closes the window.  Never
        raises: by the time this runs the record is already part of the
        state and the journal file, so there is nothing left to refuse.
        """
        for attempt in range(_FLUSH_ATTEMPTS):
            try:
                await self._commit()
                return True
            except JournalError:
                if attempt + 1 < _FLUSH_ATTEMPTS:
                    await asyncio.sleep(_FLUSH_RETRY_DELAY)
        return False

    # -- rounds --------------------------------------------------------------

    def _kill_switch_engaged(self) -> bool:
        path = self.config.kill_switch_path
        return path is not None and Path(path).exists()

    async def _run_round(self) -> tuple[int, bool]:
        """Run one engine round; returns ``(rounds, durable)``.

        Raises :class:`JournalError` only when the round *record could
        not be appended* (nothing ran, nothing changed); a failed fsync
        after the append leaves the round applied and returns
        ``durable=False``.
        """
        async with self._round_lock:
            engaged = self._kill_switch_engaged()
            if engaged != self.state.kill_switch:
                self._journal_apply("kill_switch", engaged=engaged)
            self._journal_apply("round")
            durable = await self._commit_retrying()
            if durable:
                # Only snapshot off a flushed journal: the snapshot's
                # cursor (events_processed) must never claim records the
                # disk might not hold.
                self._maybe_snapshot()
            return self.state.rounds, durable

    def _maybe_snapshot(self, force: bool = False) -> None:
        every = self.config.snapshot_every_rounds
        if self.store is None:
            return
        if not force and (every is None or self.state.rounds % every != 0):
            return
        # The flush above made every applied record durable, so the
        # snapshot's journal cursor (events_processed) is consistent.
        self._snapshot_sequence += 1
        try:
            self.store.write(
                self.state,
                sequence=self._snapshot_sequence,
                sim_time=self.state.virtual_now,
                events_processed=self.journal.appended_seq,
            )
        except (SnapshotError, OSError):
            # Snapshots are an accelerator, not the source of truth; a
            # failed write degrades restart speed, never correctness.
            pass

    async def _auto_rounds(self) -> None:
        interval = self.config.round_interval
        while not self._drain_event.is_set():
            await asyncio.sleep(interval)
            if self._drain_event.is_set():
                return
            try:
                await self._run_round()
            except JournalError:
                # The round record could not be appended (journal fault
                # or open breaker): skip this round and keep the loop
                # alive — virtual time pauses while the journal is down,
                # it must not stop forever.
                self.rounds_skipped += 1

    # -- request handling ----------------------------------------------------

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "rounds": self.state.rounds}
        if op == "open":
            return await self._op_open(request)
        if op == "submit":
            return await self._op_submit(request)
        if op == "round":
            try:
                rounds, durable = await self._run_round()
            except JournalError:
                # Typed refusal, like the submit/open paths — never an
                # unhandled exception that drops the connection.
                return {"ok": False, "reason": SHED_JOURNAL}
            response = {"ok": True, "round": rounds}
            if not durable:
                response["durable"] = False
            return response
        if op == "stats":
            return {
                "ok": True,
                "state": self.state.to_dict(),
                "rounds_skipped": self.rounds_skipped,
                "journal": {
                    "appended_seq": self.journal.appended_seq,
                    "flushed_seq": self.journal.flushed_seq,
                    "lag": self.journal.lag,
                    "swept_tmp": self.journal.swept_tmp,
                    "breaker": self.breaker.state_name,
                },
                "recovered": {
                    "records": self.recovered_records,
                    "from_snapshot": self.recovered_from_snapshot,
                },
            }
        if op == "metrics":
            return {
                "ok": True,
                "text": service_prometheus_text(self.state, self.journal, self.breaker),
            }
        if op == "close":
            name = request.get("tenant")
            if isinstance(name, str) and name in self.state.tenants:
                try:
                    self._journal_apply("tenant_close", tenant=name)
                except JournalError:
                    return {"ok": False, "reason": SHED_JOURNAL}
                if not await self._commit_retrying():
                    return {"ok": True, "durable": False}
            return {"ok": True}
        if op == "drain":
            self._request_drain()
            return {"ok": True, "draining": True}
        return {"ok": False, "reason": "bad_request"}

    async def _op_open(self, request: dict) -> dict:
        name = request.get("tenant")
        if not isinstance(name, str) or not name or len(name) > 64:
            return {"ok": False, "reason": "bad_request"}
        decision = self.state.open_check(name)
        if not decision.accepted:
            await self._shed(name, decision.reason)
            return {"ok": False, "reason": decision.reason}
        if name in self.state.tenants:
            return {"ok": True}  # idempotent re-open
        budget = request.get("budget")
        if budget is not None and not isinstance(budget, dict):
            return {"ok": False, "reason": "bad_request"}
        try:
            budget_dict = (
                TenantBudget.from_dict(budget).to_dict()
                if budget
                else self.config.default_budget.to_dict()
            )
        except (TypeError, ValueError):
            return {"ok": False, "reason": "bad_request"}
        try:
            self._journal_apply("tenant_open", tenant=name, budget=budget_dict)
        except JournalError:
            # Append failed: the tenant was never created — a true shed.
            return {"ok": False, "reason": SHED_JOURNAL}
        if not await self._commit_retrying():
            # Appended + applied, fsync owed: the open is real (a retry
            # would hit the idempotent re-open path), so ack it as
            # accepted-pending rather than claiming it never happened.
            return {"ok": True, "durable": False}
        return {"ok": True}

    async def _op_submit(self, request: dict) -> dict:
        name = request.get("tenant")
        job = request.get("job")
        if (
            not isinstance(name, str)
            or not isinstance(job, dict)
            or not isinstance(job.get("job_id"), int)
            or not isinstance(job.get("procs"), int)
            or job["procs"] < 1
            or not isinstance(job.get("runtime"), (int, float))
            or job["runtime"] < 0
        ):
            return {"ok": False, "reason": "bad_request"}
        decision = self.state.admit(name, float(job["runtime"]), job["procs"])
        if not decision.accepted:
            await self._shed(name, decision.reason)
            return {"ok": False, "reason": decision.reason}
        try:
            seq = self._journal_apply(
                "submit",
                tenant=name,
                job_id=job["job_id"],
                runtime=float(job["runtime"]),
                procs=job["procs"],
            )
        except JournalError:
            # Not journaled ⇒ not applied ⇒ must not be acked as accepted.
            self.state.shed_in_memory(name, SHED_JOURNAL)
            return {"ok": False, "reason": SHED_JOURNAL}
        if not await self._commit_retrying():
            # Appended + applied, only the fsync is owed: the job is
            # queued, the token spent, the VM-hours charged, and replay
            # resurrects it — answering "shed" here would bill the
            # tenant for a rejection and invite a duplicating retry.
            # Accepted-pending is the truthful answer.
            return {"ok": True, "seq": seq, "durable": False}
        return {"ok": True, "seq": seq}

    async def _shed(self, name: str | None, reason: str | None) -> None:
        """Journal a shed so replayed states carry the same counters; a
        failing journal degrades to an in-memory count."""
        reason = reason or "unknown"
        try:
            self._journal_apply("shed", tenant=name, reason=reason)
        except JournalError:
            # Append failed: the record was never applied, so count the
            # shed in memory instead.
            self.state.shed_in_memory(name, reason)
            return
        # A failed fsync here must NOT fall back to shed_in_memory: the
        # shed record is already applied (counting it again would double
        # it) and sits in the file awaiting the next successful flush.
        await self._commit_retrying()

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
            task.add_done_callback(self._client_tasks.discard)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("not an object")
                except ValueError:
                    response = {"ok": False, "reason": "bad_request"}
                else:
                    response = await self._dispatch(request)
                writer.write((json.dumps(response) + "\n").encode("utf-8"))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):  # drain teardown cancels lingering handlers mid-close
                pass

    # -- lifecycle -----------------------------------------------------------

    def _request_drain(self) -> None:
        self._drain_event.set()

    async def serve(self) -> int:
        """Run until drained; returns the process exit code."""
        socket_path = Path(self.config.socket_path)
        socket_path.parent.mkdir(parents=True, exist_ok=True)
        socket_path.unlink(missing_ok=True)
        server = await asyncio.start_unix_server(
            self._handle_client, path=str(socket_path)
        )
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self._request_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        round_task = (
            asyncio.create_task(self._auto_rounds())
            if self.config.round_interval > 0
            else None
        )
        try:
            await self._drain_event.wait()
        finally:
            # Graceful drain: stop admissions (no new connections; the
            # drain record rejects in-flight submissions), finish the
            # round in progress, make everything durable, then exit.
            server.close()
            await server.wait_closed()
            if self._client_tasks:
                # Give in-flight handlers a moment to finish their last
                # response, then cancel stragglers so drain never hangs
                # on a client that keeps its connection open.
                done, pending = await asyncio.wait(
                    tuple(self._client_tasks), timeout=2.0
                )
                for task in pending:
                    task.cancel()
                if pending:
                    await asyncio.gather(*pending, return_exceptions=True)
            if round_task is not None:
                round_task.cancel()
                # gather(return_exceptions=True) swallows both the
                # cancellation and any exception a dead round task
                # stored — teardown must always reach the drain record,
                # the final flush, and the exit code.
                await asyncio.gather(round_task, return_exceptions=True)
            async with self._round_lock:
                try:
                    self._journal_apply("drain")
                except JournalError:  # pragma: no cover - drain on dead disk
                    pass
                # Final flush, retried: this is the last chance to close
                # any accepted-pending window before the process exits.
                for attempt in range(_FLUSH_ATTEMPTS):
                    try:
                        self.journal.flush()
                        break
                    except JournalError:
                        if attempt + 1 < _FLUSH_ATTEMPTS:
                            await asyncio.sleep(_FLUSH_RETRY_DELAY)
                self._maybe_snapshot(force=True)
                try:
                    self.journal.close()
                except JournalError:  # pragma: no cover - dead disk
                    pass
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.remove_signal_handler(signum)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
            socket_path.unlink(missing_ok=True)
        self.exit_code = (
            EX_KILL_SWITCH if self.state.kill_switch else EX_DRAINED
        )
        return self.exit_code


def run_service(config: ServiceConfig) -> int:
    """Blocking entry point: serve until drained, return the exit code.

    Also tears the process-global worker pool down on the way out (the
    idempotent :func:`~repro.parallel.pool.shutdown_pool`, so the atexit
    hook finding it already gone is fine).
    """
    from repro.parallel.pool import shutdown_pool

    server = ServiceServer(config)
    try:
        return asyncio.run(server.serve())
    finally:
        shutdown_pool()
