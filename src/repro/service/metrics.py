"""Service health in Prometheus text format.

Rendered on demand by the ``{"op": "metrics"}`` request (and the
``repro service`` CLI), using the same exposition conventions as
:func:`repro.obs.exporter.prometheus_text`: ``# HELP`` / ``# TYPE``
preambles, sorted labels, escaped values.  A scrape sidecar can poll
the socket and serve this text over HTTP unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.exporter import sample_line
from repro.service.state import SHED_JOURNAL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cloud.spot import CircuitBreaker
    from repro.service.journal import ServiceJournal
    from repro.service.state import ServiceState

__all__ = ["service_prometheus_text"]

#: Breaker state as a gauge value (alerting rule: ``> 0`` is trouble).
_BREAKER_VALUE = {"closed": 0, "half_open": 1, "open": 2}


def service_prometheus_text(
    state: "ServiceState",
    journal: "ServiceJournal | None" = None,
    breaker: "CircuitBreaker | None" = None,
) -> str:
    """Render the live service state as Prometheus metrics."""
    lines: list[str] = []

    def metric(name: str, mtype: str, help_: str, samples: list[str]) -> None:
        if not samples:
            return
        lines.append(f"# HELP {name} {help_}")
        lines.append(f"# TYPE {name} {mtype}")
        lines.extend(samples)

    names = sorted(state.tenants)
    metric(
        "repro_service_tenants", "gauge", "Open tenants.",
        [sample_line("repro_service_tenants", len(names))],
    )
    metric(
        "repro_service_rounds_total", "counter", "Engine rounds applied.",
        [sample_line("repro_service_rounds_total", state.rounds)],
    )
    metric(
        "repro_service_virtual_seconds", "gauge",
        "Virtual time the service has advanced through.",
        [sample_line("repro_service_virtual_seconds", state.virtual_now)],
    )
    metric(
        "repro_service_vms_in_use", "gauge",
        "Leased VM slots of the shared provider.",
        [sample_line("repro_service_vms_in_use", state.total_rented())],
    )
    metric(
        "repro_service_kill_switch_engaged", "gauge",
        "1 while the provisioning kill switch is engaged.",
        [sample_line("repro_service_kill_switch_engaged", int(state.kill_switch))],
    )
    metric(
        "repro_service_draining", "gauge", "1 once a drain has started.",
        [sample_line("repro_service_draining", int(state.draining))],
    )
    metric(
        "repro_service_queue_depth", "gauge", "Queued jobs per tenant.",
        [
            sample_line(
                "repro_service_queue_depth",
                len(state.tenants[name].queue),
                {"tenant": name},
            )
            for name in names
        ],
    )
    metric(
        "repro_service_accepted_total", "counter",
        "Accepted submissions per tenant.",
        [
            sample_line(
                "repro_service_accepted_total",
                state.tenants[name].accepted,
                {"tenant": name},
            )
            for name in names
        ],
    )
    shed_samples = [
        sample_line(
            "repro_service_shed_total",
            count,
            {"tenant": name, "reason": reason},
        )
        for name in names
        for reason, count in sorted(state.tenants[name].shed.items())
    ] + [
        sample_line("repro_service_shed_total", count, {"tenant": "", "reason": reason})
        for reason, count in sorted(state.unattributed_shed.items())
    ]
    metric(
        "repro_service_shed_total", "counter",
        "Shed submissions by tenant and typed reason.",
        shed_samples,
    )
    metric(
        "repro_service_vm_hours_used", "gauge",
        "VM-hours charged against each tenant's budget (at admission).",
        [
            sample_line(
                "repro_service_vm_hours_used",
                state.tenants[name].vm_hours_used,
                {"tenant": name},
            )
            for name in names
        ],
    )

    if journal is not None:
        metric(
            "repro_service_journal_appended_seq", "counter",
            "Sequence of the last journal record appended.",
            [sample_line("repro_service_journal_appended_seq", journal.appended_seq)],
        )
        metric(
            "repro_service_journal_lag", "gauge",
            "Journal records appended but not yet fsynced (group-commit lag).",
            [sample_line("repro_service_journal_lag", journal.lag)],
        )
    if breaker is not None:
        metric(
            "repro_service_journal_breaker_state", "gauge",
            "Journal breaker: 0 closed, 1 half-open, 2 open.",
            [
                sample_line(
                    "repro_service_journal_breaker_state",
                    _BREAKER_VALUE.get(breaker.state_name, 2),
                )
            ],
        )
        journal_sheds = state.unattributed_shed.get(SHED_JOURNAL, 0)
        metric(
            "repro_service_journal_sheds_total", "counter",
            "Submissions shed because the journal was unavailable.",
            [sample_line("repro_service_journal_sheds_total", journal_sheds)],
        )
    return "\n".join(lines) + "\n"
