"""Scheduler-as-a-service: the long-running multi-tenant front end.

The batch engine (:mod:`repro.experiments.engine`) answers "what did this
workload cost?"; this package answers "keep scheduling, forever".  Many
tenants stream jobs over a local unix-socket API into isolated queues,
each tenant's policy arbitrated by the paper's Algorithm 1
(:class:`~repro.core.scheduler.PortfolioScheduler`) against one shared,
capped provider.

Robustness core (see docs/ARCHITECTURE.md, "The service layer"):

* **Admission control** — per-tenant queued-job and VM-hour budgets plus
  a token-bucket rate limit; overload sheds with typed reasons instead
  of degrading other tenants (:mod:`repro.service.state`).
* **Write-ahead journal** — every accepted submission, tenant lifecycle
  event, and engine round is appended to a JSONL journal *before* it is
  applied; replay reconstructs the service state bit-identically after
  SIGKILL (:mod:`repro.service.journal`).
* **Kill switch & graceful drain** — SIGTERM stops admissions, finishes
  the in-flight round, flushes, and exits with
  :data:`~repro.exit_codes.EX_DRAINED`; a kill-switch file halts
  provisioning without killing the process (:mod:`repro.service.server`).
* **Health metrics** — queue depth, shed counters, journal lag, and
  breaker state in Prometheus text format (:mod:`repro.service.metrics`).
"""

from repro.service.config import ServiceConfig, TenantBudget
from repro.service.journal import JournalError, ServiceJournal, read_journal
from repro.service.state import AdmissionDecision, ServiceState, TenantState

__all__ = [
    "ServiceConfig",
    "TenantBudget",
    "ServiceJournal",
    "JournalError",
    "read_journal",
    "ServiceState",
    "TenantState",
    "AdmissionDecision",
]
