"""Parallel portfolio evaluation: many policies per wave, one snapshot ship.

The paper's central engineering constraint is that evaluating all 60
portfolio policies online within the time constraint Δ is impossible on
one core — which is exactly what forces Algorithm 1's Smart/Stale/Poor
triage.  This module supplies the systems answer the paper leaves on the
table: ship the scheduling snapshot ``(queue, waits, runtimes, profile)``
to the shared worker pool once per wave and run
:meth:`~repro.core.online_sim.OnlineSimulator.evaluate` for a whole wave
of policies concurrently.

Budget semantics (deliberate deviation, see docs/ARCHITECTURE.md)
-----------------------------------------------------------------
Each policy is still charged the wall time *it actually burned on its
worker*, measured strictly around the ``evaluate`` call.  Under parallel
evaluation Δ therefore becomes a budget of **aggregate worker-seconds**
rather than elapsed main-process seconds: N workers drain roughly N× more
policies out of the same Δ of elapsed time, while Algorithm 1's set-size
arithmetic (‖Smart‖ = λK etc.) keeps operating on per-policy costs and
stays meaningful.  With the deterministic
:class:`~repro.sim.clock.VirtualCostClock` the charged costs are
machine- and worker-independent, so selection stays reproducible.

Determinism
-----------
Outcomes are merged in submission order, and the selector orders the
final score table by ``(score, fixed policy index)`` — a deterministic
total order that does not depend on which worker finished first.

Fault tolerance
---------------
A worker death poisons the pool; the evaluator respawns it and retries
the wave once, then falls back to in-process serial evaluation — a
parallel evaluation can therefore never fail in a way the serial path
would not.  Per-policy exceptions are returned as error records and fed
into the selector's quarantine machinery exactly like serial failures.

A *hung* worker (SIGSTOP, runaway host) never poisons the pool, so the
evaluator also carries an optional watchdog: with ``wave_deadline`` set,
a wave that fails to complete within the deadline has its workers
SIGKILLed (:meth:`~repro.parallel.pool.WorkerPool.kill_workers`) and is
retried on a fresh pool, with the same terminal serial fallback.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass
from typing import Sequence

from repro.cloud.profile import CloudProfile
from repro.core.online_sim import OnlineSimulator, SimOutcome
from repro.policies.combined import CombinedPolicy
from repro.workload.job import Job

from repro.parallel.pool import get_pool, reset_pool

__all__ = ["EvalRecord", "ParallelPortfolioEvaluator"]


@dataclass(slots=True, frozen=True)
class EvalRecord:
    """One policy's evaluation as reported by a worker.

    ``outcome`` is ``None`` — and ``error`` the formatted exception —
    when the simulation raised (quarantine path).  ``wall`` is the time
    the ``evaluate`` call alone burned on its worker."""

    index: int
    outcome: SimOutcome | None
    error: str | None
    wall: float


def _evaluate_chunk(
    simulator: OnlineSimulator,
    items: Sequence[tuple[int, CombinedPolicy]],
    queue: Sequence[Job],
    waits: Sequence[float],
    runtimes: Sequence[float],
    profile: CloudProfile,
) -> list[EvalRecord]:
    """Worker-side: evaluate a contiguous chunk of one wave sequentially."""
    records: list[EvalRecord] = []
    for index, policy in items:
        begin = time.perf_counter()
        try:
            outcome = simulator.evaluate(queue, waits, runtimes, profile, policy)
        except Exception as exc:
            records.append(
                EvalRecord(
                    index=index,
                    outcome=None,
                    error=f"{type(exc).__name__}: {exc}",
                    wall=time.perf_counter() - begin,
                )
            )
        else:
            records.append(
                EvalRecord(
                    index=index,
                    outcome=outcome,
                    error=None,
                    wall=time.perf_counter() - begin,
                )
            )
    return records


def _evaluate_chunk_packed(
    simulator: OnlineSimulator,
    items: Sequence[tuple[int, CombinedPolicy]],
    payload: bytes,
) -> list[EvalRecord]:
    """Worker-side: unpack the shared wave snapshot, then evaluate a chunk.

    The ``(queue, waits, runtimes, profile)`` snapshot is pickled *once*
    in the parent and shipped as opaque bytes to every chunk, instead of
    being re-pickled per ``submit`` call.  The chunk also builds one
    warm-start prefix (:meth:`OnlineSimulator.prepare`) shared by all its
    policies — the same sharing the serial selector does per round — so
    ``wall`` stays the time the evaluation alone burned.
    """
    queue, waits, runtimes, profile = pickle.loads(payload)
    prep = simulator.prepare(queue, waits, runtimes, profile)
    records: list[EvalRecord] = []
    for index, policy in items:
        begin = time.perf_counter()
        try:
            outcome = simulator.evaluate_prepared(prep, policy)
        except Exception as exc:
            records.append(
                EvalRecord(
                    index=index,
                    outcome=None,
                    error=f"{type(exc).__name__}: {exc}",
                    wall=time.perf_counter() - begin,
                )
            )
        else:
            records.append(
                EvalRecord(
                    index=index,
                    outcome=outcome,
                    error=None,
                    wall=time.perf_counter() - begin,
                )
            )
    return records


def _chunk(items: list, n: int) -> list[list]:
    """Split *items* into at most *n* contiguous, near-equal chunks."""
    n = min(n, len(items))
    if n <= 0:
        return []
    size, extra = divmod(len(items), n)
    chunks, start = [], 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        chunks.append(items[start:end])
        start = end
    return chunks


class ParallelPortfolioEvaluator:
    """Evaluates waves of portfolio policies on the shared worker pool.

    Holds only picklable state (the online simulator and a worker count);
    the pool itself is process-global and re-fetched per wave, so
    schedulers carrying an evaluator still snapshot/restore cleanly
    through the durability layer.
    """

    def __init__(
        self,
        simulator: OnlineSimulator,
        workers: int,
        wave_deadline: float | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if wave_deadline is not None and wave_deadline <= 0:
            raise ValueError(
                f"wave_deadline must be positive, got {wave_deadline}"
            )
        self.simulator = simulator
        self.workers = int(workers)
        #: Wall-clock seconds a whole wave may take before its workers
        #: are presumed hung and SIGKILLed; ``None`` disables the
        #: watchdog (a wave then waits indefinitely, as before).
        self.wave_deadline = wave_deadline

    def evaluate_wave(
        self,
        wave: Sequence[tuple[int, CombinedPolicy]],
        queue: Sequence[Job],
        waits: Sequence[float],
        runtimes: Sequence[float],
        profile: CloudProfile,
    ) -> list[EvalRecord]:
        """Evaluate *wave* (``(fixed index, policy)`` pairs) concurrently.

        Returns records in submission order regardless of completion
        order.  Never raises on worker death — see the module docstring.
        """
        items = list(wave)
        if not items:
            return []
        # The snapshot is pickled once per *wave* and shipped as shared
        # bytes: queue/waits/runtimes/profile dominate the payload, and
        # re-pickling them per chunk was pure submit-side overhead.  The
        # policy objects (a few dataclasses each) still ride per chunk.
        payload = pickle.dumps(
            (list(queue), list(waits), list(runtimes), profile),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        chunks = _chunk(items, self.workers)
        for _ in range(2):
            pool = get_pool(self.workers)
            futures = [
                pool.submit(
                    _evaluate_chunk_packed,
                    self.simulator,
                    chunk,
                    payload,
                )
                for chunk in chunks
            ]
            deadline = (
                time.monotonic() + self.wave_deadline
                if self.wave_deadline is not None
                else None
            )
            try:
                results: list[EvalRecord] = []
                for future in futures:  # submission order == wave order
                    if deadline is None:
                        results.extend(future.result())
                    else:
                        remaining = max(0.0, deadline - time.monotonic())
                        results.extend(future.result(timeout=remaining))
                return results
            except FutureTimeout:
                # A worker is hung (SIGSTOP, stalled host): it will never
                # resolve its future and never poison the pool.  SIGKILL
                # the workers — the only signal a stopped process obeys —
                # and retry on a fresh pool.
                for future in futures:
                    future.cancel()
                pool.kill_workers()
            except BrokenExecutor:
                # A worker died mid-wave (OOM-killer, SIGKILL, ...).
                # Respawn and retry the whole wave: evaluations are pure,
                # so re-running them is always safe.
                reset_pool()
        # Pool keeps dying: degrade to the serial in-process path rather
        # than failing a selection the serial scheduler would survive.
        return _evaluate_chunk(
            self.simulator, items, list(queue), list(waits), list(runtimes), profile
        )
