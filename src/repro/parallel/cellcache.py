"""Content-addressed, disk-backed memoisation of campaign cells.

A campaign expands into independent *cells* (one experiment run each).
Cells are deterministic given their full specification, so a completed
cell can be persisted and reused across processes, crashes, and partial
edits: re-running a campaign only recomputes the cells whose
specification actually changed.

Keying
------
The cache key is the SHA-256 of the cell's *canonical token*: the kind
of run, workload identity (trace model, duration, seed), predictor,
policy/scheduler parameters, and the full
:class:`~repro.experiments.engine.EngineConfig` expanded field-by-field
by :func:`repro.experiments.cache.config_token`.  Because the token
reflects over ``dataclasses.fields``, a knob added to the engine later
(audit levels, fault models, quarantine caps, ...) automatically changes
the key — a stale hit on a config differing only in a late-added field
is structurally impossible.  A format version is folded into every key
so payload-layout changes invalidate old entries wholesale.

Storage
-------
One file per cell, named by its key.  Each file carries its own
integrity header (SHA-256 of the pickled payload) and is written with
the same temp-file + ``fsync`` + rename protocol as the durability
layer's :class:`~repro.durability.snapshot.SnapshotStore`, so a crash
mid-write can never leave a readable-but-torn entry.  Corrupt or
unreadable entries are treated as misses and deleted.

The cache is an accelerator, not the product: a ``put`` that keeps
failing (full disk, dead mount) is retried briefly and then the cache
*degrades* — further puts become no-ops, one warning is emitted, and the
campaign keeps computing results it simply cannot memoise.  Reads keep
working (misses at worst).
"""

from __future__ import annotations

import hashlib
import pickle
import time
import warnings
from pathlib import Path
from typing import Any

import numpy as np

from repro.durability.snapshot import atomic_write
from repro.resilience.retry import RetryPolicy

__all__ = ["CellCache", "CELL_CACHE_FORMAT", "CACHE_IO_RETRY"]

#: Bump when the pickled payload layout changes incompatibly.
CELL_CACHE_FORMAT = 1

#: Backoff between failed put attempts; short, because a campaign cell's
#: result is already in memory and the put blocks the fan-out loop.
CACHE_IO_RETRY = RetryPolicy(
    base_delay=0.05, max_delay=0.5, multiplier=3.0, max_attempts=8
)

#: Put retries before the cache degrades to write-disabled.
_PUT_RETRIES = 2

_MAGIC = b"repro-cell-cache\n"


class CellCache:
    """A directory of content-addressed experiment results."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        #: ``True`` once writes failed past their retry budget; further
        #: puts are silently skipped (reads still work).
        self.degraded = False

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def key_of(token: object) -> str:
        """SHA-256 hex digest of a canonical cell token."""
        text = repr((CELL_CACHE_FORMAT, token))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def path_of(self, key: str) -> Path:
        return self.directory / f"cell-{key}.pkl"

    # -- access -------------------------------------------------------------

    def get(self, key: str) -> Any | None:
        """The stored payload for *key*, or None on miss/corruption."""
        path = self.path_of(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        if not raw.startswith(_MAGIC):
            path.unlink(missing_ok=True)
            return None
        body = raw[len(_MAGIC):]
        digest, _, blob = body.partition(b"\n")
        if hashlib.sha256(blob).hexdigest().encode("ascii") != digest:
            # Torn or tampered entry: recompute rather than trust it.
            path.unlink(missing_ok=True)
            return None
        try:
            return pickle.loads(blob)
        except Exception:
            path.unlink(missing_ok=True)
            return None

    def put(self, key: str, payload: Any) -> bool:
        """Atomically persist *payload* under *key* (write-then-rename).

        Returns ``True`` on success.  Persistent ``OSError`` degrades the
        cache to write-disabled (with one warning) instead of raising —
        losing memoisation must never lose the computed result."""
        if self.degraded:
            return False
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(blob).hexdigest().encode("ascii")
        data = _MAGIC + digest + b"\n" + blob
        path = self.path_of(key)
        # Keys are SHA-256 hex, so the prefix is a deterministic,
        # per-entry jitter seed.
        rng = np.random.default_rng(int(key[:8], 16) if key else 0)
        delay = 0.0
        for attempt in range(_PUT_RETRIES + 1):
            try:
                self.directory.mkdir(parents=True, exist_ok=True)
                atomic_write(path, data, site="cellcache")
                return True
            except OSError as exc:
                if attempt >= _PUT_RETRIES:
                    self.degraded = True
                    warnings.warn(
                        f"cell cache at {self.directory} degraded to "
                        f"write-disabled after repeated I/O failures "
                        f"({exc}); campaign results are no longer being "
                        f"memoised",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    return False
                delay = CACHE_IO_RETRY.next_delay(delay, rng)
                time.sleep(delay)
        return False  # pragma: no cover - loop always returns

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("cell-*.pkl"))
