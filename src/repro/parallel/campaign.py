"""Campaign fan-out: figure/table/multi-seed grids as independent cells.

The figure drivers run every ``(trace × policy × seed)`` cell of their
grids serially.  A :class:`Campaign` expands such a grid into explicit
:class:`CellSpec` cells and executes them across the shared worker pool:

* **deterministic cells** — every cell carries its full specification
  (workload identity, seeds, predictor, policy/scheduler parameters and
  the complete :class:`~repro.experiments.engine.EngineConfig`), so a
  cell computes the same result in any process, on any worker, in any
  order;
* **memoisation** — completed cells are persisted in a content-addressed
  on-disk :class:`~repro.parallel.cellcache.CellCache`; re-running a
  campaign after a crash or a partial edit only recomputes what changed;
* **fault tolerance** — a worker death (SIGKILL, OOM) poisons the pool;
  the campaign respawns it and re-submits only the unfinished cells,
  bounded by a per-cell retry budget;
* **hang tolerance** — with ``cell_deadline`` set, a progress watchdog
  fires when *no* cell completes within the deadline (a per-cell timer
  would misfire on cells merely queued behind others): hung workers are
  SIGKILLed, lost cells re-submitted, and cells that hang past the
  retry budget degrade to the in-process serial path — hangs, unlike
  repeated deaths, never abort a campaign;
* **clean Ctrl-C** — pending cells are cancelled and the interrupt
  re-raised; everything already completed is in the cell cache, so the
  re-run resumes instead of restarting;
* **serial equivalence** — ``workers=0`` executes the very same cell
  functions in-process, in cell order: its results (and any exported
  JSON) are bit-identical to the parallel run's.

The campaign's results are installed back into the in-process experiment
memo (:mod:`repro.experiments.cache`), after which the untouched serial
figure drivers hydrate from cache — parallelism changes *when* cells are
computed, never *what* they compute.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
from concurrent.futures import BrokenExecutor, FIRST_COMPLETED, Future, wait
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.audit.config import default_audit_config
from repro.core.scheduler import PortfolioScheduler
from repro.experiments.cache import (
    cached_trace,
    config_token,
    install_fixed_result,
    install_portfolio_result,
    make_predictor,
)
from repro.experiments.configs import DEFAULT_SCALE, ExperimentScale, portfolio_kwargs
from repro.experiments.engine import EngineConfig, ExperimentResult
from repro.experiments.runner import run_fixed, run_portfolio
from repro.policies.combined import build_portfolio, policy_by_name
from repro.workload.synthetic import TRACES, TraceSpec

from repro.parallel.cellcache import CellCache
from repro.parallel.pool import WorkerPool, get_pool, reset_pool

__all__ = [
    "CellSpec",
    "CellOutcome",
    "Campaign",
    "CampaignError",
    "comparison_cells",
    "install_results",
    "CAMPAIGN_FIGURES",
]

_TRACES_BY_NAME = {spec.name: spec for spec in TRACES}

#: Figures a campaign can regenerate: each is the Figs. 4/7/8 grid under
#: one runtime-information regime (Fig. 5 reuses Fig. 4's runs).
CAMPAIGN_FIGURES = {
    "fig4": "oracle",
    "fig5": "oracle",
    "fig7": "knn",
    "fig8": "user",
}


class CampaignError(RuntimeError):
    """A cell kept failing after exhausting its retry budget."""


@dataclass(slots=True, frozen=True)
class CellSpec:
    """One independent experiment cell of a campaign grid.

    ``scheduler_kwargs`` (portfolio cells only) is a sorted tuple of
    ``(name, value)`` pairs so specs stay hashable and canonically
    ordered; values must be picklable and ``repr``-stable.
    """

    kind: str  # "fixed" | "portfolio"
    trace: str  # TraceSpec name in the synthetic registry
    duration: float
    trace_seed: int
    predictor: str
    policy: str | None = None  # fixed cells: portfolio member name
    config: EngineConfig = field(default_factory=EngineConfig)
    scheduler_kwargs: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("fixed", "portfolio"):
            raise ValueError(f"kind must be 'fixed' or 'portfolio', got {self.kind!r}")
        if self.kind == "fixed" and not self.policy:
            raise ValueError("fixed cells need a policy name")
        if self.kind == "portfolio" and self.policy is not None:
            raise ValueError("portfolio cells must not name a policy")
        if self.trace not in _TRACES_BY_NAME:
            raise ValueError(
                f"unknown trace {self.trace!r}; pick from {sorted(_TRACES_BY_NAME)}"
            )

    def token(self) -> tuple:
        """Canonical token for content-addressed caching.

        Includes the full engine config via
        :func:`~repro.experiments.cache.config_token`, so every audit /
        resilience / quarantine knob participates in the key."""
        return (
            self.kind,
            self.trace,
            repr(self.duration),
            self.trace_seed,
            self.predictor,
            self.policy,
            config_token(self.config),
            tuple((k, repr(v)) for k, v in self.scheduler_kwargs),
        )

    def describe(self) -> str:
        what = self.policy if self.kind == "fixed" else "PORTFOLIO"
        return f"{self.trace}/{self.predictor}/{what}"


@dataclass(slots=True, frozen=True)
class CellOutcome:
    """A completed cell: its spec, result, and where the result came from."""

    spec: CellSpec
    result: ExperimentResult
    scheduler: PortfolioScheduler | None
    source: str  # "ran" | "cache"


def _resolved_config(config: EngineConfig) -> EngineConfig:
    """Pin the effective audit config into the cell's EngineConfig.

    Workers are fresh processes: the main process's in-memory audit
    default (e.g. the test suite's strict-everywhere fixture) would not
    reach them via :func:`default_audit_config`.  Resolving it here makes
    cells self-contained and their cache keys cover the *effective* audit
    level."""
    if config.audit is not None:
        return config
    return dataclasses.replace(config, audit=default_audit_config())


def _maybe_kill_for_test() -> None:
    """Crash-injection hook for the worker-death tests and CI smoke.

    When ``REPRO_TEST_KILL_ONCE`` names a marker path, the first worker
    to claim the marker SIGKILLs itself mid-cell — exercising the
    pool-respawn/retry path with a genuinely unclean death.  Only ever
    fires inside pool workers, exactly once per marker file."""
    marker = os.environ.get("REPRO_TEST_KILL_ONCE")
    if not marker or multiprocessing.parent_process() is None:
        return
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(fd)
    os.kill(os.getpid(), signal.SIGKILL)


def _run_cell(spec: CellSpec) -> tuple[ExperimentResult, PortfolioScheduler | None]:
    """Execute one cell (worker- and main-process safe, deterministic)."""
    _maybe_kill_for_test()
    trace_spec = _TRACES_BY_NAME[spec.trace]
    jobs = cached_trace(trace_spec, spec.duration, spec.trace_seed)
    predictor = make_predictor(spec.predictor)
    if spec.kind == "fixed":
        assert spec.policy is not None
        result = run_fixed(jobs, policy_by_name(spec.policy), predictor, spec.config)
        return result, None
    return run_portfolio(jobs, predictor, spec.config, **dict(spec.scheduler_kwargs))


class Campaign:
    """Executes a list of cells, optionally in parallel and disk-cached.

    Parameters
    ----------
    cells:
        The grid, in the order results should be returned.
    workers:
        0 (default) runs every cell in-process, serially, in cell order —
        bit-identical to the historical drivers.  N ≥ 1 fans out across
        the shared spawn pool.
    cell_cache:
        Optional directory (or :class:`CellCache`) for cross-process
        memoisation of completed cells.
    retries:
        How many times a cell may be re-submitted after transient worker
        deaths (campaign aborts past the budget) or watchdog-detected
        hangs (campaign degrades to in-process execution past it).
    cell_deadline:
        Progress watchdog (parallel runs only): if no cell completes for
        this many wall-clock seconds, the workers are presumed hung and
        SIGKILLed, and the in-flight cells re-submitted.  ``None``
        (default) waits indefinitely.
    fresh_pool:
        Use a dedicated pool torn down after the run instead of the
        process-global one (benchmarks want cold, isolated workers).
    progress:
        Optional callback ``(done, total, outcome)`` streamed as cells
        complete (parallel: completion order; serial: cell order).
    profiler:
        Optional :class:`~repro.obs.profiler.Profiler`: each computed
        cell's engine wall time is merged back into the parent as a
        ``campaign.cell`` span (workers measure their own wall; the
        parent aggregates), and disk-cache hits count under
        ``campaign.cell.cached``.  ``None`` (default) records nothing.
    """

    def __init__(
        self,
        cells: Sequence[CellSpec],
        workers: int = 0,
        cell_cache: CellCache | str | os.PathLike | None = None,
        retries: int = 2,
        fresh_pool: bool = False,
        progress: "Callable[[int, int, CellOutcome], None] | None" = None,
        profiler: "object | None" = None,
        cell_deadline: float | None = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if cell_deadline is not None and cell_deadline <= 0:
            raise ValueError(
                f"cell_deadline must be positive, got {cell_deadline}"
            )
        self.cells = list(cells)
        self.workers = int(workers)
        if cell_cache is not None and not isinstance(cell_cache, CellCache):
            cell_cache = CellCache(cell_cache)
        self.cell_cache = cell_cache
        self.retries = int(retries)
        self.fresh_pool = bool(fresh_pool)
        self.progress = progress
        self.profiler = profiler
        self.cell_deadline = cell_deadline

    # -- execution ----------------------------------------------------------

    def run(self) -> list[CellOutcome]:
        """Execute all cells; results come back in cell order."""
        effective = [
            dataclasses.replace(spec, config=_resolved_config(spec.config))
            for spec in self.cells
        ]
        keys = [CellCache.key_of(spec.token()) for spec in effective]
        outcomes: dict[int, CellOutcome] = {}
        done = 0

        # Disk-cache hits first: they cost one read, no pool traffic.
        pending: list[int] = []
        for i, spec in enumerate(effective):
            payload = self.cell_cache.get(keys[i]) if self.cell_cache else None
            if payload is not None:
                result, scheduler = payload
                outcomes[i] = CellOutcome(self.cells[i], result, scheduler, "cache")
                done += 1
                if self.profiler is not None:
                    self.profiler.add("campaign.cell.cached", 0.0)
                self._report(done, outcomes[i])
            else:
                pending.append(i)

        if pending:
            if self.workers == 0:
                done = self._run_serial(effective, keys, pending, outcomes, done)
            else:
                done = self._run_parallel(effective, keys, pending, outcomes, done)
        return [outcomes[i] for i in range(len(self.cells))]

    def _report(self, done: int, outcome: CellOutcome) -> None:
        if self.progress is not None:
            self.progress(done, len(self.cells), outcome)

    def _store(self, key: str, result, scheduler) -> None:
        if self.cell_cache is not None:
            self.cell_cache.put(key, (result, scheduler))

    def _observe_cell(self, result) -> None:
        """Merge one computed cell's worker-side wall time into the
        parent profiler (the worker measured it; the parent aggregates)."""
        if self.profiler is not None:
            self.profiler.add("campaign.cell", float(result.wall_seconds))

    def _run_serial(self, effective, keys, pending, outcomes, done) -> int:
        for i in pending:
            result, scheduler = _run_cell(effective[i])
            self._observe_cell(result)
            self._store(keys[i], result, scheduler)
            outcomes[i] = CellOutcome(self.cells[i], result, scheduler, "ran")
            done += 1
            self._report(done, outcomes[i])
        return done

    def _run_parallel(self, effective, keys, pending, outcomes, done) -> int:
        pool = WorkerPool(self.workers) if self.fresh_pool else get_pool(self.workers)
        attempts = {i: 0 for i in pending}
        try:
            while pending:
                futures: dict[Future, int] = {
                    pool.submit(_run_cell, effective[i]): i for i in pending
                }
                broken = False
                hung = False
                not_done = set(futures)
                try:
                    while not_done:
                        finished, not_done = wait(
                            not_done,
                            timeout=self.cell_deadline,
                            return_when=FIRST_COMPLETED,
                        )
                        if not finished:
                            # Progress watchdog: *nothing* completed for a
                            # whole deadline.  (Per-future timers would
                            # misfire on cells still queued behind long
                            # but healthy ones.)
                            hung = True
                            break
                        for future in finished:
                            i = futures[future]
                            result, scheduler = future.result()
                            self._observe_cell(result)
                            self._store(keys[i], result, scheduler)
                            outcomes[i] = CellOutcome(
                                self.cells[i], result, scheduler, "ran"
                            )
                            done += 1
                            self._report(done, outcomes[i])
                except BrokenExecutor:
                    broken = True
                except KeyboardInterrupt:
                    for future in not_done:
                        future.cancel()
                    raise
                pending = []
                if broken or hung:
                    # Every in-flight future is lost even if its cell was
                    # innocent.  Reap workers, respawn, and re-submit
                    # whatever has not completed.
                    if hung:
                        # Hung workers never poison the pool themselves;
                        # SIGKILL is the only signal a stopped process
                        # obeys, and it implies a reset.
                        for future in not_done:
                            future.cancel()
                        pool.kill_workers()
                    elif self.fresh_pool:
                        pool.reset()
                    else:
                        reset_pool()
                    if not self.fresh_pool:
                        pool = get_pool(self.workers)
                    lost = sorted(i for i in futures.values() if i not in outcomes)
                    for i in lost:
                        attempts[i] += 1
                    exhausted = [i for i in lost if attempts[i] > self.retries]
                    if exhausted:
                        if not hung:
                            raise CampaignError(
                                f"cell {effective[exhausted[0]].describe()} "
                                f"failed {attempts[exhausted[0]]} times "
                                f"(worker deaths); giving up"
                            )
                        # Cells that hang past the budget degrade to the
                        # in-process serial path: a hang is an environment
                        # property (stuck I/O, stopped workers), not a
                        # property of the cell, so computing it here is
                        # strictly better than aborting the campaign.
                        done = self._run_serial(
                            effective, keys, exhausted, outcomes, done
                        )
                        lost = [i for i in lost if i not in outcomes]
                    pending = lost
        finally:
            if self.fresh_pool:
                pool.shutdown()
        return done


# -- grid builders & cache priming -------------------------------------------


def comparison_cells(
    predictor: str,
    scale: ExperimentScale | None = None,
    traces: Sequence[TraceSpec] | None = None,
    config: EngineConfig | None = None,
) -> list[CellSpec]:
    """The Figs. 4/7/8 grid as cells: 60 fixed policies + the portfolio,
    per trace, under one runtime-information regime."""
    scale = scale or DEFAULT_SCALE
    cfg = config or EngineConfig()
    cells: list[CellSpec] = []
    for spec in traces if traces is not None else TRACES:
        for policy in build_portfolio():
            cells.append(
                CellSpec(
                    kind="fixed",
                    trace=spec.name,
                    duration=scale.compare_duration,
                    trace_seed=scale.seed,
                    predictor=predictor,
                    policy=policy.name,
                    config=cfg,
                )
            )
        cells.append(
            CellSpec(
                kind="portfolio",
                trace=spec.name,
                duration=scale.compare_duration,
                trace_seed=scale.seed,
                predictor=predictor,
                config=cfg,
                scheduler_kwargs=tuple(sorted(portfolio_kwargs().items())),
            )
        )
    return cells


def install_results(outcomes: Sequence[CellOutcome]) -> None:
    """Install campaign outcomes into the in-process experiment memo.

    Keys use each cell's *original* config (before audit resolution), so
    the untouched figure drivers — which pass ``config=None`` and rely on
    the process default audit — hit the cache exactly."""
    for outcome in outcomes:
        spec = outcome.spec
        if spec.kind == "fixed":
            assert spec.policy is not None
            install_fixed_result(
                spec.trace,
                spec.duration,
                spec.trace_seed,
                spec.policy,
                spec.predictor,
                spec.config,
                outcome.result,
            )
        else:
            assert outcome.scheduler is not None
            install_portfolio_result(
                spec.trace,
                spec.duration,
                spec.trace_seed,
                spec.predictor,
                spec.config,
                dict(spec.scheduler_kwargs),
                outcome.result,
                outcome.scheduler,
            )
