"""The shared worker pool: one persistent, spawn-safe process pool.

Both layers of the parallel subsystem — intra-run portfolio evaluation
(:mod:`repro.parallel.evaluator`) and cross-run campaign fan-out
(:mod:`repro.parallel.campaign`) — draw workers from the single
process-global pool managed here, so a campaign whose cells themselves
evaluate portfolios never oversubscribes the machine with nested pools.

Design points:

* **Spawn context.**  Workers are started with the ``spawn`` method even
  on platforms whose default is ``fork``: the simulator holds live numpy
  RNGs, open benchmark fixtures, and (in tests) pytest state that must
  not be inherited mid-flight.  A spawned worker imports :mod:`repro`
  fresh and receives every task argument by pickle, which is exactly the
  determinism contract the rest of this repository already relies on.
* **Persistence.**  The pool is created lazily on first use, survives
  across campaigns/selector invocations (amortising the interpreter
  start-up cost), and is torn down from an ``atexit`` hook.
* **Crash containment.**  A worker death poisons the underlying
  :class:`~concurrent.futures.ProcessPoolExecutor`
  (:class:`~concurrent.futures.process.BrokenProcessPool`); callers
  invoke :func:`reset_pool` to discard the broken executor and respawn.
  Completed futures keep their results, so only unfinished work is
  re-submitted by the caller.
* **Hang containment.**  A *stopped* worker (``SIGSTOP``, hardware
  stall, livelock) is worse than a dead one: it never poisons the
  executor, its futures never resolve, and a plain
  ``shutdown(wait=True)`` — including the interpreter's own atexit
  joins — blocks forever.  :meth:`WorkerPool.shutdown` therefore bounds
  its wait and escalates to ``SIGKILL`` (which terminates even stopped
  processes); :meth:`WorkerPool.kill_workers` gives watchdogs the same
  hammer directly.
* **Ctrl-C.**  Workers ignore ``SIGINT``; the main process owns
  interrupt handling and cancels or abandons outstanding futures.

Chaos: every :meth:`WorkerPool.submit` consults the
``pool.task`` fault point (:mod:`repro.chaos.hooks`); a scheduled
``kill``/``stop`` action makes the worker SIGKILL/SIGSTOP *itself* on
task entry, which is how the test suite manufactures dead and hung
workers deterministically.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor

from repro.chaos.hooks import task_action

__all__ = ["WorkerPool", "get_pool", "reset_pool", "shutdown_pool", "cpu_workers"]


def cpu_workers() -> int:
    """A sensible default worker count: every core the host exposes."""
    return os.cpu_count() or 1


def _init_worker() -> None:  # pragma: no cover - runs in the child process
    """Worker initialiser: leave SIGINT to the parent.

    On Ctrl-C the terminal delivers SIGINT to the whole foreground
    process group; ignoring it in workers lets the main process decide
    (cancel, snapshot, re-raise) without workers dying mid-cell and
    masquerading as crashes."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _chaos_task(action: str, fn, args: tuple, kwargs: dict):
    """Worker-side wrapper applying a scheduled chaos action, then the task.

    ``kill`` never returns; ``stop`` parks the worker until someone sends
    ``SIGCONT`` (or, in practice, until a watchdog SIGKILLs it)."""
    if action == "kill":  # pragma: no cover - dies before coverage flushes
        os.kill(os.getpid(), signal.SIGKILL)
    elif action == "stop":  # pragma: no cover - stopped before flushes
        os.kill(os.getpid(), signal.SIGSTOP)
    return fn(*args, **kwargs)


class WorkerPool:
    """A lazily created, respawnable spawn-context process pool."""

    #: Grace a bounded shutdown grants workers before the SIGKILL sweep.
    SHUTDOWN_GRACE = 5.0

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self._executor: ProcessPoolExecutor | None = None
        # Guards the executor handoff in reset()/shutdown(): the atexit
        # hook, a service drain, and a watchdog can all race to tear the
        # pool down, and exactly one of them may own (and join) the
        # executor — the rest must see None and return, never double-join.
        self._teardown_lock = threading.Lock()

    @property
    def executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            with self._teardown_lock:
                if self._executor is None:
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.workers,
                        mp_context=multiprocessing.get_context("spawn"),
                        initializer=_init_worker,
                    )
        return self._executor

    def submit(self, fn, /, *args, **kwargs) -> Future:
        # The chaos decision is made here, in the parent (where the
        # injector lives); only the resulting action ships to the worker.
        action = task_action("pool.task")
        if action is not None:
            return self.executor.submit(_chaos_task, action, fn, args, kwargs)
        return self.executor.submit(fn, *args, **kwargs)

    def processes(self) -> list:
        """Live handles of the executor's worker processes (may be empty)."""
        executor = self._executor
        if executor is None:
            return []
        # Private, but the only handle the stdlib offers; guarded so a
        # future stdlib rename degrades to "no processes found" rather
        # than an AttributeError inside a watchdog.
        procs = getattr(executor, "_processes", None) or {}
        return list(procs.values())

    def kill_workers(self) -> int:
        """SIGKILL every worker process and discard the executor.

        SIGKILL terminates even SIGSTOPped processes, so this is the one
        reliable way to reap a *hung* (as opposed to dead) worker.  The
        next :meth:`submit` respawns a fresh pool.  Returns the number of
        processes signalled."""
        procs = self.processes()
        signalled = 0
        for proc in procs:
            try:
                if proc.is_alive():
                    os.kill(proc.pid, signal.SIGKILL)
                    signalled += 1
            except (ProcessLookupError, ValueError, OSError):
                pass  # already reaped, or closed handle
        self.reset()
        for proc in procs:
            proc.join(timeout=self.SHUTDOWN_GRACE)
        return signalled

    def reset(self) -> None:
        """Discard the (typically broken) executor; the next submit respawns.

        Idempotent and safe under concurrent callers: only the caller
        that wins the executor handoff shuts it down."""
        with self._teardown_lock:
            executor = self._executor
            self._executor = None
        if executor is not None:
            # A broken executor's shutdown is instant; a healthy one is
            # drained without waiting so reset never blocks on stuck work.
            executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self, timeout: float | None = SHUTDOWN_GRACE) -> None:
        """Tear the pool down, waiting at most *timeout* seconds.

        ``shutdown(wait=True)`` on an executor with a stopped worker
        blocks forever, which used to deadlock atexit teardown and any
        test calling :func:`shutdown_pool`.  Instead: cancel queued work,
        give workers *timeout* seconds to drain, then SIGKILL stragglers.
        ``timeout=None`` restores the unbounded wait.

        Idempotent: a second (or concurrent) caller — the atexit hook
        racing a service drain, say — finds ``_executor`` already handed
        off and returns without joining anything twice."""
        with self._teardown_lock:
            executor = self._executor
            self._executor = None
        if executor is None:
            return
        if timeout is None:
            executor.shutdown(wait=True, cancel_futures=True)
            return
        procs = list((getattr(executor, "_processes", None) or {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        deadline = time.monotonic() + timeout
        for proc in procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        stragglers = [p for p in procs if p.is_alive()]
        for proc in stragglers:
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except (ProcessLookupError, ValueError, OSError):
                pass
        for proc in stragglers:
            proc.join(timeout=self.SHUTDOWN_GRACE)


_pool: WorkerPool | None = None
_pool_lock = threading.Lock()


def get_pool(workers: int) -> WorkerPool:
    """The process-global pool, grown (never shrunk) to *workers*.

    Growing requires a respawn; both layers tolerate that because they
    only hold a pool reference for the duration of one wave/campaign
    batch and re-fetch it afterwards."""
    global _pool
    outgrown = None
    with _pool_lock:
        if _pool is None:
            _pool = WorkerPool(workers)
        elif _pool.workers < workers:
            outgrown = _pool
            _pool = WorkerPool(workers)
        pool = _pool
    # Joining the outgrown pool happens outside the lock so a slow drain
    # cannot block other callers from reaching the fresh pool.
    if outgrown is not None:
        outgrown.shutdown()
    return pool


def reset_pool() -> None:
    """Respawn the global pool after a worker death poisoned it.

    Idempotent: WorkerPool.reset() hands the executor off under a lock,
    so concurrent resets (or a reset racing the atexit shutdown) cannot
    double-join workers."""
    with _pool_lock:
        pool = _pool
    if pool is not None:
        pool.reset()


def shutdown_pool() -> None:
    """Tear the global pool down (atexit, and tests that want isolation).

    Safe to call twice — the atexit hook and an explicit service-drain
    teardown both land here, and only the first finds a pool to join."""
    global _pool
    with _pool_lock:
        pool, _pool = _pool, None
    if pool is not None:
        pool.shutdown()


atexit.register(shutdown_pool)
