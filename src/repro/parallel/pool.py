"""The shared worker pool: one persistent, spawn-safe process pool.

Both layers of the parallel subsystem — intra-run portfolio evaluation
(:mod:`repro.parallel.evaluator`) and cross-run campaign fan-out
(:mod:`repro.parallel.campaign`) — draw workers from the single
process-global pool managed here, so a campaign whose cells themselves
evaluate portfolios never oversubscribes the machine with nested pools.

Design points:

* **Spawn context.**  Workers are started with the ``spawn`` method even
  on platforms whose default is ``fork``: the simulator holds live numpy
  RNGs, open benchmark fixtures, and (in tests) pytest state that must
  not be inherited mid-flight.  A spawned worker imports :mod:`repro`
  fresh and receives every task argument by pickle, which is exactly the
  determinism contract the rest of this repository already relies on.
* **Persistence.**  The pool is created lazily on first use, survives
  across campaigns/selector invocations (amortising the interpreter
  start-up cost), and is torn down from an ``atexit`` hook.
* **Crash containment.**  A worker death poisons the underlying
  :class:`~concurrent.futures.ProcessPoolExecutor`
  (:class:`~concurrent.futures.process.BrokenProcessPool`); callers
  invoke :func:`reset_pool` to discard the broken executor and respawn.
  Completed futures keep their results, so only unfinished work is
  re-submitted by the caller.
* **Ctrl-C.**  Workers ignore ``SIGINT``; the main process owns
  interrupt handling and cancels or abandons outstanding futures.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import signal
from concurrent.futures import Future, ProcessPoolExecutor

__all__ = ["WorkerPool", "get_pool", "reset_pool", "shutdown_pool", "cpu_workers"]


def cpu_workers() -> int:
    """A sensible default worker count: every core the host exposes."""
    return os.cpu_count() or 1


def _init_worker() -> None:  # pragma: no cover - runs in the child process
    """Worker initialiser: leave SIGINT to the parent.

    On Ctrl-C the terminal delivers SIGINT to the whole foreground
    process group; ignoring it in workers lets the main process decide
    (cancel, snapshot, re-raise) without workers dying mid-cell and
    masquerading as crashes."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)


class WorkerPool:
    """A lazily created, respawnable spawn-context process pool."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self._executor: ProcessPoolExecutor | None = None

    @property
    def executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=_init_worker,
            )
        return self._executor

    def submit(self, fn, /, *args, **kwargs) -> Future:
        return self.executor.submit(fn, *args, **kwargs)

    def reset(self) -> None:
        """Discard the (typically broken) executor; the next submit respawns."""
        executor = self._executor
        self._executor = None
        if executor is not None:
            # A broken executor's shutdown is instant; a healthy one is
            # drained without waiting so reset never blocks on stuck work.
            executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)


_pool: WorkerPool | None = None


def get_pool(workers: int) -> WorkerPool:
    """The process-global pool, grown (never shrunk) to *workers*.

    Growing requires a respawn; both layers tolerate that because they
    only hold a pool reference for the duration of one wave/campaign
    batch and re-fetch it afterwards."""
    global _pool
    if _pool is None:
        _pool = WorkerPool(workers)
    elif _pool.workers < workers:
        _pool.shutdown()
        _pool = WorkerPool(workers)
    return _pool


def reset_pool() -> None:
    """Respawn the global pool after a worker death poisoned it."""
    if _pool is not None:
        _pool.reset()


def shutdown_pool() -> None:
    """Tear the global pool down (atexit, and tests that want isolation)."""
    global _pool
    if _pool is not None:
        _pool.shutdown()
        _pool = None


atexit.register(shutdown_pool)
