"""Parallel execution subsystem: multi-process portfolio evaluation and
campaign fan-out over one persistent, spawn-safe process pool.

Two layers share the pool (:mod:`repro.parallel.pool`):

* :class:`~repro.parallel.evaluator.ParallelPortfolioEvaluator` — runs
  Algorithm 1's online policy simulations concurrently inside one
  engine run (wired through ``PortfolioScheduler(workers=N)`` and
  ``repro run --workers N``);
* :class:`~repro.parallel.campaign.Campaign` — fans a figure/table grid
  out as independent cells (``repro campaign fig7 --workers N``),
  memoised in a content-addressed, crash-safe disk cache
  (:class:`~repro.parallel.cellcache.CellCache`).

``workers=0`` everywhere means the historical serial path, bit-identical
to a build without this subsystem.  See docs/ARCHITECTURE.md for the
pool lifecycle and the parallel Δ-budget semantics.
"""

from repro.parallel.campaign import (
    CAMPAIGN_FIGURES,
    Campaign,
    CampaignError,
    CellOutcome,
    CellSpec,
    comparison_cells,
    install_results,
)
from repro.parallel.cellcache import CELL_CACHE_FORMAT, CellCache
from repro.parallel.evaluator import EvalRecord, ParallelPortfolioEvaluator
from repro.parallel.pool import (
    WorkerPool,
    cpu_workers,
    get_pool,
    reset_pool,
    shutdown_pool,
)

__all__ = [
    "CAMPAIGN_FIGURES",
    "Campaign",
    "CampaignError",
    "CellOutcome",
    "CellSpec",
    "CELL_CACHE_FORMAT",
    "CellCache",
    "EvalRecord",
    "ParallelPortfolioEvaluator",
    "WorkerPool",
    "comparison_cells",
    "cpu_workers",
    "get_pool",
    "install_results",
    "reset_pool",
    "shutdown_pool",
]
