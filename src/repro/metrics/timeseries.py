"""Time-series instrumentation of a running experiment.

The paper's figures report end-of-run aggregates; understanding *why* a
policy wins usually needs the dynamics — queue depth, fleet size, how
many VMs sit idle.  :class:`TimeseriesRecorder` plugs into
:class:`~repro.experiments.engine.ClusterEngine` as an observer and
samples those signals at every scheduling tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TimeseriesRecorder", "TimeseriesSample", "sparkline"]

_SPARK_CHARS = " .:-=+*#%@"


@dataclass(slots=True, frozen=True)
class TimeseriesSample:
    """One scheduling-tick snapshot."""

    time: float
    queue_length: int
    queued_procs: int
    fleet: int
    idle: int
    booting: int
    busy: int
    active_policy: str


@dataclass(slots=True)
class TimeseriesRecorder:
    """Collects :class:`TimeseriesSample` rows; pass as engine observer."""

    samples: list[TimeseriesSample] = field(default_factory=list)
    #: Per-attribute array cache: reports call ``peak_queue`` /
    #: ``mean_idle_fraction`` repeatedly, and rebuilding an O(n) array per
    #: accessor call made each of them O(n) every time.  Appending a
    #: sample invalidates the cache wholesale.
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __call__(self, sample: TimeseriesSample) -> None:
        self.samples.append(sample)
        self._series_cache().clear()

    def _series_cache(self) -> dict:
        # Recorders unpickled from snapshots written before the cache
        # existed lack the slot; recreate it lazily.
        try:
            return self._cache
        except AttributeError:  # pragma: no cover - old-snapshot path
            self._cache = {}
            return self._cache

    # -- accessors ----------------------------------------------------------

    def series(self, attr: str) -> np.ndarray:
        """One attribute as an array, e.g. ``series("queue_length")``.

        Cached per attribute until the next append; treat the returned
        array as read-only.
        """
        cache = self._series_cache()
        cached = cache.get(attr)
        if cached is None or len(cached) != len(self.samples):
            cached = np.array(
                [getattr(s, attr) for s in self.samples], dtype=float
            )
            cache[attr] = cached
        return cached

    def times(self) -> np.ndarray:
        return self.series("time")

    def peak_queue(self) -> int:
        return int(self.series("queue_length").max()) if self.samples else 0

    def peak_fleet(self) -> int:
        return int(self.series("fleet").max()) if self.samples else 0

    def mean_idle_fraction(self) -> float:
        """Average share of the fleet sitting idle at decision points."""
        if not self.samples:
            return 0.0
        fleet = self.series("fleet")
        idle = self.series("idle")
        mask = fleet > 0
        if not mask.any():
            return 0.0
        return float((idle[mask] / fleet[mask]).mean())

    def policy_switches(self) -> int:
        """How many times the applied policy changed between ticks."""
        names = [s.active_policy for s in self.samples]
        return sum(1 for a, b in zip(names, names[1:]) if a != b)


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """Render *values* as a coarse ASCII sparkline of *width* characters.

    Values are max-pooled into buckets so spikes stay visible, then
    normalised min→max: a series living entirely at or below zero (a
    delta series, a negative utility trace) still shows its shape
    instead of rendering all-blank.  Non-finite samples are dropped from
    pooling; a bucket with no finite sample at all renders as ``?`` so
    gaps stay visible instead of propagating NaN through the scaling.
    A constant series renders as a flat baseline of the lowest ink
    glyph.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return ""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    buckets = np.array_split(values, min(width, values.size))
    pooled = np.array([
        b[np.isfinite(b)].max() if np.isfinite(b).any() else np.nan
        for b in buckets
    ])
    finite = np.isfinite(pooled)
    if not finite.any():
        return "?" * len(pooled)
    lo = pooled[finite].min()
    hi = pooled[finite].max()
    span = hi - lo
    chars = []
    for value in pooled:
        if not np.isfinite(value):
            chars.append("?")
        elif span <= 0:
            chars.append(_SPARK_CHARS[1])  # flat series: visible baseline
        else:
            level = int(round((value - lo) / span * (len(_SPARK_CHARS) - 1)))
            chars.append(_SPARK_CHARS[level])
    return "".join(chars)
