"""Time-series instrumentation of a running experiment.

The paper's figures report end-of-run aggregates; understanding *why* a
policy wins usually needs the dynamics — queue depth, fleet size, how
many VMs sit idle.  :class:`TimeseriesRecorder` plugs into
:class:`~repro.experiments.engine.ClusterEngine` as an observer and
samples those signals at every scheduling tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TimeseriesRecorder", "TimeseriesSample", "sparkline"]

_SPARK_CHARS = " .:-=+*#%@"


@dataclass(slots=True, frozen=True)
class TimeseriesSample:
    """One scheduling-tick snapshot."""

    time: float
    queue_length: int
    queued_procs: int
    fleet: int
    idle: int
    booting: int
    busy: int
    active_policy: str


@dataclass(slots=True)
class TimeseriesRecorder:
    """Collects :class:`TimeseriesSample` rows; pass as engine observer."""

    samples: list[TimeseriesSample] = field(default_factory=list)

    def __call__(self, sample: TimeseriesSample) -> None:
        self.samples.append(sample)

    # -- accessors ----------------------------------------------------------

    def series(self, attr: str) -> np.ndarray:
        """One attribute as an array, e.g. ``series("queue_length")``."""
        return np.array([getattr(s, attr) for s in self.samples], dtype=float)

    def times(self) -> np.ndarray:
        return self.series("time")

    def peak_queue(self) -> int:
        return int(self.series("queue_length").max()) if self.samples else 0

    def peak_fleet(self) -> int:
        return int(self.series("fleet").max()) if self.samples else 0

    def mean_idle_fraction(self) -> float:
        """Average share of the fleet sitting idle at decision points."""
        if not self.samples:
            return 0.0
        fleet = self.series("fleet")
        idle = self.series("idle")
        mask = fleet > 0
        if not mask.any():
            return 0.0
        return float((idle[mask] / fleet[mask]).mean())

    def policy_switches(self) -> int:
        """How many times the applied policy changed between ticks."""
        names = [s.active_policy for s in self.samples]
        return sum(1 for a, b in zip(names, names[1:]) if a != b)


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """Render *values* as a coarse ASCII sparkline of *width* characters.

    Values are max-pooled into buckets so spikes stay visible.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return ""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    buckets = np.array_split(values, min(width, values.size))
    pooled = np.array([b.max() for b in buckets])
    top = pooled.max()
    if top <= 0:
        return " " * len(pooled)
    levels = np.minimum(
        (pooled / top * (len(_SPARK_CHARS) - 1)).round().astype(int),
        len(_SPARK_CHARS) - 1,
    )
    return "".join(_SPARK_CHARS[i] for i in levels)
