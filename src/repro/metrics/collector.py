"""Per-job records and experiment-level metric aggregation."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.slowdown import bounded_slowdown
from repro.resilience.stats import ResilienceStats
from repro.workload.job import Job

__all__ = ["JobRecord", "SummaryMetrics", "MetricsCollector"]

HOUR = 3_600.0


@dataclass(slots=True, frozen=True)
class JobRecord:
    """Immutable completion record of one job."""

    job_id: int
    submit_time: float
    start_time: float
    finish_time: float
    runtime: float
    procs: int

    @property
    def wait(self) -> float:
        return self.start_time - self.submit_time

    @property
    def response(self) -> float:
        return self.finish_time - self.submit_time

    @property
    def slowdown(self) -> float:
        return bounded_slowdown(self.wait, self.runtime)

    @property
    def area(self) -> float:
        return self.procs * self.runtime


@dataclass(slots=True, frozen=True)
class SummaryMetrics:
    """The numbers every figure in the paper plots.

    ``rv_seconds`` is the charged cost (already hour-rounded by the
    billing model); ``charged_hours`` expresses it the way the paper's
    cost axes do.
    """

    jobs: int
    avg_bounded_slowdown: float
    rj_seconds: float
    rv_seconds: float
    avg_wait: float
    max_wait: float
    #: What the cloud-unreliability layer did (all-zero on reliable runs).
    resilience: ResilienceStats = field(default_factory=ResilienceStats)

    @property
    def utilization(self) -> float:
        """RJ / RV; 0 when nothing was charged."""
        return self.rj_seconds / self.rv_seconds if self.rv_seconds > 0 else 0.0

    @property
    def charged_hours(self) -> float:
        return self.rv_seconds / HOUR

    def row(self) -> dict[str, float]:
        """Flatten for report tables."""
        return {
            "jobs": self.jobs,
            "BSD": round(self.avg_bounded_slowdown, 3),
            "cost[VMh]": round(self.charged_hours, 1),
            "util": round(self.utilization, 3),
            "avg_wait[s]": round(self.avg_wait, 1),
        }


class MetricsCollector:
    """Accumulates :class:`JobRecord` completions during a run."""

    def __init__(self) -> None:
        self.records: list[JobRecord] = []

    def record_completion(self, job: Job) -> JobRecord:
        """Book a finished job (requires start/finish times to be set)."""
        if job.start_time < 0 or job.finish_time < 0:
            raise ValueError(f"job {job.job_id} has not completed")
        rec = JobRecord(
            job_id=job.job_id,
            submit_time=job.submit_time,
            start_time=job.start_time,
            finish_time=job.finish_time,
            runtime=job.runtime,
            procs=job.procs,
        )
        self.records.append(rec)
        return rec

    def summarize(
        self, rv_seconds: float, resilience: ResilienceStats | None = None
    ) -> SummaryMetrics:
        """Final metrics given the provider's total charged seconds."""
        resilience = resilience or ResilienceStats()
        if not self.records:
            return SummaryMetrics(
                jobs=0,
                avg_bounded_slowdown=1.0,
                rj_seconds=0.0,
                rv_seconds=rv_seconds,
                avg_wait=0.0,
                max_wait=0.0,
                resilience=resilience,
            )
        slowdowns = np.array([r.slowdown for r in self.records])
        waits = np.array([r.wait for r in self.records])
        rj = float(sum(r.area for r in self.records))
        return SummaryMetrics(
            jobs=len(self.records),
            avg_bounded_slowdown=float(slowdowns.mean()),
            rj_seconds=rj,
            rv_seconds=rv_seconds,
            avg_wait=float(waits.mean()),
            max_wait=float(waits.max()),
            resilience=resilience,
        )
