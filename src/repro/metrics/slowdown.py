"""Bounded job slowdown (Feitelson et al., JSSPP'04; paper §2).

Plain slowdown (response / runtime) explodes for very short jobs — a
10-second job waiting a minute has slowdown 7 — so the denominator is
floored at a bound, 10 s throughout the paper.
"""

from __future__ import annotations

from repro.workload.job import BOUNDED_SLOWDOWN_BOUND

__all__ = ["bounded_slowdown", "bounded_slowdown_batch"]


def bounded_slowdown(
    wait: float, runtime: float, bound: float = BOUNDED_SLOWDOWN_BOUND
) -> float:
    """Bounded slowdown of a job that waited *wait* and ran *runtime* seconds.

    ``max(1, (wait + max(runtime, bound)) / max(runtime, bound))`` — never
    below 1 (a job cannot respond faster than it runs).
    """
    if wait < 0:
        raise ValueError(f"wait must be >= 0, got {wait}")
    if runtime < 0:
        raise ValueError(f"runtime must be >= 0, got {runtime}")
    if bound <= 0:
        raise ValueError(f"bound must be > 0, got {bound}")
    denom = max(runtime, bound)
    return max(1.0, (wait + denom) / denom)


def bounded_slowdown_batch(waits, runtimes, bound: float = BOUNDED_SLOWDOWN_BOUND):
    """Vectorised :func:`bounded_slowdown` over parallel arrays.

    Every operation is elementwise (``maximum``, ``+``, ``/`` — no
    reductions), so each output element is the bit-identical IEEE-754
    result of the scalar function on the same inputs; callers that need a
    reproducible sum must accumulate the returned array themselves in a
    defined order.  Inputs are validated in bulk rather than per element.
    """
    import numpy as np

    waits = np.asarray(waits, dtype=np.float64)
    runtimes = np.asarray(runtimes, dtype=np.float64)
    if waits.size and float(waits.min()) < 0:
        raise ValueError("waits must all be >= 0")
    if runtimes.size and float(runtimes.min()) < 0:
        raise ValueError("runtimes must all be >= 0")
    if bound <= 0:
        raise ValueError(f"bound must be > 0, got {bound}")
    denom = np.maximum(runtimes, bound)
    return np.maximum(1.0, (waits + denom) / denom)
