"""Bounded job slowdown (Feitelson et al., JSSPP'04; paper §2).

Plain slowdown (response / runtime) explodes for very short jobs — a
10-second job waiting a minute has slowdown 7 — so the denominator is
floored at a bound, 10 s throughout the paper.
"""

from __future__ import annotations

from repro.workload.job import BOUNDED_SLOWDOWN_BOUND

__all__ = ["bounded_slowdown"]


def bounded_slowdown(
    wait: float, runtime: float, bound: float = BOUNDED_SLOWDOWN_BOUND
) -> float:
    """Bounded slowdown of a job that waited *wait* and ran *runtime* seconds.

    ``max(1, (wait + max(runtime, bound)) / max(runtime, bound))`` — never
    below 1 (a job cannot respond faster than it runs).
    """
    if wait < 0:
        raise ValueError(f"wait must be >= 0, got {wait}")
    if runtime < 0:
        raise ValueError(f"runtime must be >= 0, got {runtime}")
    if bound <= 0:
        raise ValueError(f"bound must be > 0, got {bound}")
    denom = max(runtime, bound)
    return max(1.0, (wait + denom) / denom)
