"""Plain-text reporting helpers for the benchmark harness.

Every table/figure benchmark prints its reproduced rows through
:func:`format_table`, so ``pytest benchmarks/ --benchmark-only -s`` shows
the same series the paper plots.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "normalize_series"]


def format_table(
    rows: Sequence[Mapping[str, object]], title: str = "", floatfmt: str = ".3f"
) -> str:
    """Render *rows* (list of dicts sharing keys) as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    headers = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    table = [[cell(row.get(h, "")) for h in headers] for row in rows]
    widths = [
        max(len(headers[i]), max(len(r[i]) for r in table)) for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in table:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def normalize_series(values: Sequence[float], reference: float | None = None) -> list[float]:
    """Divide *values* by *reference* (default: the first value).

    The paper's Figs. 9-10 plot everything normalized to the smallest
    parameter setting; this helper reproduces those axes.  A zero or
    near-zero reference (an empty or all-zero series, or a degenerate
    explicit reference) yields zeros rather than raising
    ``ZeroDivisionError`` (or overflowing to absurd ratios) mid-report.
    """
    if not values:
        return []
    ref = values[0] if reference is None else reference
    if abs(ref) < 1e-12:
        return [0.0 for _ in values]
    return [v / ref for v in values]
