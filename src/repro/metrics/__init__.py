"""Performance metrics (the paper's performance space Y, §2).

* bounded job slowdown (bound = 10 s) — user experience,
* RJ — total consumed CPU·seconds of jobs,
* RV — total *charged* VM·seconds (hour-rounded) = monetary cost,
* utilization RJ/RV — efficiency,
* the utility U = κ·(RJ/RV)^α·(1/BSD)^β that portfolio selection optimises.
"""

from repro.metrics.collector import JobRecord, MetricsCollector, SummaryMetrics
from repro.metrics.report import format_table, normalize_series
from repro.metrics.slowdown import bounded_slowdown

__all__ = [
    "JobRecord",
    "MetricsCollector",
    "SummaryMetrics",
    "bounded_slowdown",
    "format_table",
    "normalize_series",
]
