"""Additional runtime predictors beyond the paper's k-NN.

The paper points to more sophisticated prediction as orthogonal work
(§3.2, citing Matsunaga & Fortes); these predictors plus
:class:`PredictorEvaluation` make that comparison runnable here:

* :class:`UserMeanPredictor` — running mean of ALL the user's completed
  jobs (k-NN with k = ∞),
* :class:`EwmaPredictor` — exponentially weighted moving average per
  user (recent jobs matter more, but history never fully forgotten),
* :class:`GlobalMedianPredictor` — median runtime across all users (a
  user-agnostic baseline floor).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.predict.base import RuntimePredictor
from repro.predict.simple import UserEstimatePredictor
from repro.workload.job import Job

__all__ = [
    "UserMeanPredictor",
    "EwmaPredictor",
    "GlobalMedianPredictor",
    "PredictorEvaluation",
    "evaluate_predictor",
]


class UserMeanPredictor(RuntimePredictor):
    """Mean runtime of every completed job of the user."""

    name = "user-mean"

    def __init__(self, fallback: RuntimePredictor | None = None) -> None:
        self.fallback = fallback or UserEstimatePredictor()
        self._sum: dict[int, float] = {}
        self._count: dict[int, int] = {}

    def predict(self, job: Job) -> float:
        count = self._count.get(job.user, 0)
        if count == 0:
            return max(self.fallback.predict(job), 1.0)
        return max(self._sum[job.user] / count, 1.0)

    def observe_completion(self, job: Job) -> None:
        self._sum[job.user] = self._sum.get(job.user, 0.0) + job.runtime
        self._count[job.user] = self._count.get(job.user, 0) + 1

    def reset(self) -> None:
        self._sum.clear()
        self._count.clear()


class EwmaPredictor(RuntimePredictor):
    """Per-user exponentially weighted moving average of runtimes."""

    name = "ewma"

    def __init__(
        self, alpha: float = 0.5, fallback: RuntimePredictor | None = None
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must lie in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self.fallback = fallback or UserEstimatePredictor()
        self._ewma: dict[int, float] = {}

    def predict(self, job: Job) -> float:
        value = self._ewma.get(job.user)
        if value is None:
            return max(self.fallback.predict(job), 1.0)
        return max(value, 1.0)

    def observe_completion(self, job: Job) -> None:
        prev = self._ewma.get(job.user)
        if prev is None:
            self._ewma[job.user] = job.runtime
        else:
            self._ewma[job.user] = self.alpha * job.runtime + (1 - self.alpha) * prev

    def reset(self) -> None:
        self._ewma.clear()


class GlobalMedianPredictor(RuntimePredictor):
    """Median runtime over every completed job, regardless of user."""

    name = "global-median"

    def __init__(self, fallback: RuntimePredictor | None = None) -> None:
        self.fallback = fallback or UserEstimatePredictor()
        self._sorted: list[float] = []

    def predict(self, job: Job) -> float:
        if not self._sorted:
            return max(self.fallback.predict(job), 1.0)
        n = len(self._sorted)
        mid = n // 2
        if n % 2:
            median = self._sorted[mid]
        else:
            median = 0.5 * (self._sorted[mid - 1] + self._sorted[mid])
        return max(median, 1.0)

    def observe_completion(self, job: Job) -> None:
        bisect.insort(self._sorted, job.runtime)

    def reset(self) -> None:
        self._sorted.clear()


@dataclass(slots=True, frozen=True)
class PredictorEvaluation:
    """Accuracy statistics of one predictor over one trace.

    ``accuracy`` follows Tsafrir et al.: mean of min(pred, actual) /
    max(pred, actual) — 1.0 is perfect, and ≈0.5 is what the paper
    reports for the k-NN predictor on PWA traces.
    """

    predictor: str
    samples: int
    accuracy: float
    median_ratio: float  # predicted / actual, median
    overestimate_fraction: float

    def row(self) -> dict[str, object]:
        return {
            "predictor": self.predictor,
            "samples": self.samples,
            "accuracy": round(self.accuracy, 3),
            "median pred/actual": round(self.median_ratio, 3),
            "% over": round(self.overestimate_fraction * 100, 1),
        }


def evaluate_predictor(
    predictor: RuntimePredictor, jobs: list[Job]
) -> PredictorEvaluation:
    """Feed *jobs* in submit order; score each prediction against truth.

    This is an offline evaluation (predict-then-observe per job), which
    matches how the scheduler consumes predictions closely enough for
    ranking predictors.
    """
    ratios = []
    accs = []
    for job in sorted(jobs, key=lambda j: j.submit_time):
        predicted = predictor.predict(job)
        actual = max(job.runtime, 1.0)
        ratios.append(predicted / actual)
        accs.append(min(predicted, actual) / max(predicted, actual))
        predictor.observe_completion(job)
    if not ratios:
        raise ValueError("cannot evaluate a predictor on an empty trace")
    ratios_arr = np.array(ratios)
    return PredictorEvaluation(
        predictor=predictor.name,
        samples=len(ratios),
        accuracy=float(np.mean(accs)),
        median_ratio=float(np.median(ratios_arr)),
        overestimate_fraction=float((ratios_arr > 1.0).mean()),
    )
