"""Stateless predictors: the oracle and raw user estimates."""

from __future__ import annotations

from repro.predict.base import RuntimePredictor
from repro.workload.job import Job

__all__ = ["OraclePredictor", "UserEstimatePredictor"]

#: Fallback runtime when a job carries no usable estimate (seconds).
DEFAULT_ESTIMATE = 3_600.0


class OraclePredictor(RuntimePredictor):
    """Returns the job's actual runtime (the paper's 'accurate runtime')."""

    name = "oracle"

    def predict(self, job: Job) -> float:
        return max(job.runtime, 1.0)


class UserEstimatePredictor(RuntimePredictor):
    """Returns the user-supplied estimate, warts and all.

    PWA estimates are typically large overestimates; jobs without an
    estimate fall back to one hour (a common queue default).
    """

    name = "user-estimate"

    def predict(self, job: Job) -> float:
        if job.user_estimate > 0:
            return job.user_estimate
        return DEFAULT_ESTIMATE
