"""Tsafrir-style system-generated runtime prediction (paper §3.2).

Tsafrir et al. [TPDS'07] replace user estimates with the average runtime
of the user's two most recently submitted-and-completed jobs — an
instance of k-nearest-neighbour with k=2 over the user's own history,
found to be the sweet spot (≈50% accuracy) on PWA workloads.  Jobs from
users with no history fall back to the user estimate.
"""

from __future__ import annotations

from collections import deque

from repro.predict.base import RuntimePredictor
from repro.predict.simple import UserEstimatePredictor
from repro.workload.job import Job

__all__ = ["KnnPredictor"]


class KnnPredictor(RuntimePredictor):
    """Mean runtime of the user's *k* most recently completed jobs.

    Parameters
    ----------
    k:
        History window per user (paper and Tsafrir et al.: 2).
    fallback:
        Predictor used while a user has no completed jobs yet (default:
        the user's own estimate, exactly as Tsafrir et al. bootstrap).
    """

    name = "knn"

    def __init__(self, k: int = 2, fallback: RuntimePredictor | None = None) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.fallback = fallback or UserEstimatePredictor()
        self._history: dict[int, deque[float]] = {}

    def predict(self, job: Job) -> float:
        history = self._history.get(job.user)
        if not history:
            return max(self.fallback.predict(job), 1.0)
        return max(sum(history) / len(history), 1.0)

    def observe_completion(self, job: Job) -> None:
        history = self._history.get(job.user)
        if history is None:
            history = deque(maxlen=self.k)
            self._history[job.user] = history
        history.append(job.runtime)

    def reset(self) -> None:
        self._history.clear()

    def accuracy_sample(self, job: Job) -> float | None:
        """Prediction/actual ratio for *job* if a prediction exists.

        Instrumentation for studying predictor quality (not used by the
        scheduler itself).
        """
        history = self._history.get(job.user)
        if not history:
            return None
        return (sum(history) / len(history)) / max(job.runtime, 1e-9)
