"""Job-runtime prediction (paper §3.2).

Several portfolio policies (ODE, ODX, LXF, WFP3, UNICEF) and the online
simulator itself consume job runtimes the scheduler cannot actually know.
Three information regimes reproduce the paper's §6.1/§6.3 comparison:

* :class:`OraclePredictor` — actual runtimes (Fig. 4),
* :class:`KnnPredictor` — Tsafrir-style system prediction: the mean of the
  user's two most recently *completed* jobs (Fig. 7),
* :class:`UserEstimatePredictor` — raw user estimates (Fig. 8).
"""

from repro.predict.base import RuntimePredictor
from repro.predict.knn import KnnPredictor
from repro.predict.simple import OraclePredictor, UserEstimatePredictor

__all__ = [
    "KnnPredictor",
    "OraclePredictor",
    "RuntimePredictor",
    "UserEstimatePredictor",
]
