"""Predictor interface."""

from __future__ import annotations

import abc

from repro.workload.job import Job

__all__ = ["RuntimePredictor"]


class RuntimePredictor(abc.ABC):
    """Supplies the runtime estimate the scheduler plans with.

    The engine calls :meth:`predict` for queued jobs and
    :meth:`observe_completion` exactly once per finished job, in
    completion order, so online predictors can learn.
    """

    name: str = "predictor"

    @abc.abstractmethod
    def predict(self, job: Job) -> float:
        """Planning runtime (seconds, > 0) for *job*."""

    def observe_completion(self, job: Job) -> None:
        """Called when *job* finishes (default: stateless, ignore)."""

    def reset(self) -> None:
        """Drop learned state (between experiment repetitions)."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__} {self.name}>"
