"""Seeded, stream-splittable random number helpers.

Every stochastic component (arrival processes, runtime distributions,
Algorithm 1's random pick from the ``Poor`` set, ...) draws from its own
named stream derived from a single experiment seed, so adding a new
consumer never perturbs the draws of existing ones and whole experiments
replay bit-identically.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["make_rng", "RngFactory"]


def _stream_key(name: str) -> int:
    """Stable 32-bit key for a stream name (CRC32, platform-independent)."""
    return zlib.crc32(name.encode("utf-8"))


def make_rng(seed: int, stream: str = "default") -> np.random.Generator:
    """Build a :class:`numpy.random.Generator` for ``(seed, stream)``.

    The same pair always yields the same generator state; distinct stream
    names yield statistically independent generators.
    """
    return np.random.default_rng(np.random.SeedSequence([seed, _stream_key(stream)]))


class RngFactory:
    """Hands out named, independent generators derived from one seed.

    Examples
    --------
    >>> rngs = RngFactory(42)
    >>> a = rngs("arrivals")
    >>> b = rngs("runtimes")
    >>> a is rngs("arrivals")   # streams are cached per name
    True
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def __call__(self, stream: str) -> np.random.Generator:
        rng = self._streams.get(stream)
        if rng is None:
            rng = make_rng(self.seed, stream)
            self._streams[stream] = rng
        return rng

    def fresh(self, stream: str) -> np.random.Generator:
        """A brand-new generator for *stream*, ignoring the cache."""
        return make_rng(self.seed, stream)
