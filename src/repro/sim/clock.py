"""Cost clocks for time-constrained portfolio selection.

The paper's Algorithm 1 budgets a wall-clock time constraint Δ across
policy simulations.  Measuring real wall time makes experiments depend on
the host machine, so (exactly like the paper's §6.5 instrumentation, which
injects a constant 10 ms overhead per policy simulation) we provide a
deterministic :class:`VirtualCostClock` alongside the production
:class:`WallCostClock`.  Both expose the same tiny interface: a context
manager that reports the elapsed "cost" of one policy simulation.
"""

from __future__ import annotations

import abc
import time

__all__ = ["CostClock", "WallCostClock", "VirtualCostClock"]


class CostClock(abc.ABC):
    """Measures the cost ``c_i`` of one online policy simulation."""

    @abc.abstractmethod
    def measure(self, wall_seconds: float, sim_events: int) -> float:
        """Return the charged cost, in seconds, of one policy simulation.

        Parameters
        ----------
        wall_seconds:
            Actual wall time the simulation took.
        sim_events:
            Number of simulation steps it executed (a machine-independent
            size proxy available to virtual clocks).
        """

    def stamp(self) -> float:
        """A monotonic reference instant (wall clocks only; virtual clocks
        return 0 because they never consult real time)."""
        return 0.0


class WallCostClock(CostClock):
    """Charges real elapsed wall time (production behaviour)."""

    def measure(self, wall_seconds: float, sim_events: int) -> float:
        return wall_seconds

    def stamp(self) -> float:
        return time.perf_counter()

    def __repr__(self) -> str:
        return "WallCostClock()"


class VirtualCostClock(CostClock):
    """Charges a deterministic cost per policy simulation.

    ``fixed_cost`` reproduces the paper's constant 10 ms overhead; an
    optional ``per_event`` component lets ablations model simulations whose
    cost grows with queue length.
    """

    def __init__(self, fixed_cost: float = 0.010, per_event: float = 0.0) -> None:
        if fixed_cost < 0 or per_event < 0:
            raise ValueError("costs must be non-negative")
        self.fixed_cost = float(fixed_cost)
        self.per_event = float(per_event)

    def measure(self, wall_seconds: float, sim_events: int) -> float:
        return self.fixed_cost + self.per_event * sim_events

    def __repr__(self) -> str:
        return f"VirtualCostClock({self.fixed_cost!r}, {self.per_event!r})"
