"""Event queue and simulation loop.

The kernel is deliberately minimal: a binary-heap :class:`EventQueue` with
lazy cancellation, and a :class:`Simulator` that pops events in timestamp
order and dispatches them to registered handlers.  Handlers may schedule
further events; time never flows backwards.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, Iterator

from repro.sim.events import Event, EventKind

__all__ = ["EventQueue", "Simulator"]

Handler = Callable[["Simulator", Event], None]


class EventQueue:
    """A time-ordered priority queue of :class:`Event` objects.

    Cancellation is lazy: :meth:`Event.cancel` marks the event, and the
    queue silently discards cancelled entries when they surface.  A live
    counter (maintained on push/pop/cancel/clear via the event's back
    reference) keeps ``len()`` and truthiness O(1) even with millions of
    lazily cancelled entries in the heap.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._live = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events. O(1)."""
        return self._live

    def __bool__(self) -> bool:
        """True if any live event remains."""
        return self._live > 0

    def _note_cancelled(self) -> None:
        """Callback from :meth:`Event.cancel` on an event this queue holds."""
        self._live -= 1

    def push(self, event: Event) -> Event:
        """Insert *event* and return it (for later cancellation)."""
        if event.cancelled:
            raise ValueError("cannot push a cancelled event")
        if event.owner is not None and event.owner is not self:
            raise ValueError("event already belongs to another queue")
        event.owner = self
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            event.owner = None
            if not event.cancelled:
                self._live -= 1
                return event
        raise IndexError("pop from empty event queue")

    def peek_time(self) -> float | None:
        """Timestamp of the earliest live event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap).owner = None
        return self._heap[0].time if self._heap else None

    def cancel(self, event: Event) -> None:
        """Cancel *event*; equivalent to ``event.cancel()`` (kept for API
        symmetry — cancellation is lazy either way)."""
        event.cancel()

    def clear(self) -> None:
        for event in self._heap:
            event.owner = None
        self._heap.clear()
        self._live = 0

    def drain(self) -> Iterator[Event]:
        """Pop every live event in order (useful in tests)."""
        while self:
            yield self.pop()


class Simulator:
    """The discrete-event simulation loop.

    Handlers are registered per :class:`EventKind`; unhandled kinds raise,
    which turns silently dropped events (a classic DES bug) into loud
    failures.

    Examples
    --------
    >>> sim = Simulator()
    >>> seen = []
    >>> sim.on(EventKind.GENERIC, lambda s, e: seen.append((s.now, e.payload)))
    >>> _ = sim.schedule(Event(5.0, payload="hi"))
    >>> sim.run()
    >>> seen
    [(5.0, 'hi')]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self.queue = EventQueue()
        self._handlers: dict[EventKind, Handler] = {}
        self.events_processed = 0
        #: Optional pre-dispatch observation hook: called with
        #: ``(simulator, event)`` for every popped event *before* the
        #: clock advances and the handler runs, so the observer sees the
        #: previous timestamp in ``now`` and can audit delivery order.
        #: The audit layer installs its invariant monitor here; ``None``
        #: (the default) costs one attribute check per event.
        self.tracer: Handler | None = None
        #: Optional :class:`~repro.obs.profiler.Profiler`: when set,
        #: :meth:`step` times each handler dispatch into a per-event-kind
        #: span (``kernel.dispatch.<KIND>``).  ``None`` (the default)
        #: costs one attribute check per event and never reads a clock.
        self.profiler: Any | None = None

    def on(self, kind: EventKind, handler: Handler) -> None:
        """Register *handler* for events of *kind* (one handler per kind)."""
        self._handlers[kind] = handler

    def schedule(self, event: Event) -> Event:
        """Schedule *event*; it must not lie in the simulated past."""
        if event.time < self.now:
            raise ValueError(
                f"cannot schedule event at {event.time} before current time {self.now}"
            )
        return self.queue.push(event)

    def schedule_at(
        self,
        time: float,
        kind: EventKind = EventKind.GENERIC,
        payload: Any = None,
    ) -> Event:
        """Convenience wrapper building and scheduling an :class:`Event`."""
        return self.schedule(Event(time, kind, payload))

    def schedule_after(
        self,
        delay: float,
        kind: EventKind = EventKind.GENERIC,
        payload: Any = None,
    ) -> Event:
        """Schedule an event *delay* seconds from the current time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.now + delay, kind, payload)

    def step(self) -> Event | None:
        """Process a single event; return it, or ``None`` if the queue is empty."""
        if not self.queue:
            return None
        event = self.queue.pop()
        if self.tracer is not None:
            self.tracer(self, event)
        self.now = event.time
        handler = self._handlers.get(event.kind)
        if handler is None:
            raise RuntimeError(f"no handler registered for event kind {event.kind!r}")
        if self.profiler is None:
            handler(self, event)
        else:
            begin = time.perf_counter()
            handler(self, event)
            self.profiler.add(
                f"kernel.dispatch.{event.kind.name}",
                time.perf_counter() - begin,
            )
        self.events_processed += 1
        return event

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, *until* is reached, or *max_events*.

        ``until`` is inclusive: events stamped exactly ``until`` still run.
        When the run stops because of ``until``, the clock is advanced to
        ``until`` so post-run measurements see a consistent end time.
        """
        processed = 0
        if until is None:
            # Unbounded run: no deadline to compare against, so skip the
            # per-event peek (pop performs the same lazy-cancel cleanup).
            while self.queue:
                if max_events is not None and processed >= max_events:
                    break
                self.step()
                processed += 1
            return
        while self.queue:
            next_time = self.queue.peek_time()
            if next_time is not None and next_time > until:
                break
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1
        if self.now < until:
            self.now = until
