"""Simulation events.

Events carry a timestamp, a kind, an integer priority used to order
same-time events deterministically, and an arbitrary payload.  The total
order is ``(time, priority, seq)`` where ``seq`` is a monotonically
increasing insertion counter, so two events never compare equal and heap
ordering is stable and reproducible.

The counter is module-level process state.  Crash-safe resume
(:mod:`repro.durability`) must restore it alongside the event heap —
otherwise events created after a resume would receive *smaller* sequence
numbers than events already in the heap, silently changing same-time
tie-breaks relative to an uninterrupted run.  :func:`snapshot_seq` and
:func:`restore_seq` exist for exactly that.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.kernel import EventQueue

__all__ = ["Event", "EventKind", "snapshot_seq", "restore_seq"]

_seq = 0


def _next_seq() -> int:
    global _seq
    value = _seq
    _seq += 1
    return value


def snapshot_seq() -> int:
    """Current value of the global event sequence counter."""
    return _seq


def restore_seq(value: int) -> None:
    """Restore the global event sequence counter (resume support).

    Monotonic by construction: restoring backwards past live events would
    break the total order, so the counter only ever moves forward.
    """
    global _seq
    _seq = max(_seq, int(value))


class EventKind(enum.IntEnum):
    """Built-in event kinds used by the cluster engine.

    The numeric value doubles as the default same-time priority: when
    several events share a timestamp, job completions are processed first
    (freeing VMs), then VM boots, then new arrivals, then scheduler ticks —
    so a scheduling decision at time *t* always sees the full state of
    time *t*.
    """

    JOB_FINISH = 0
    VM_FAIL = 1
    VM_READY = 2
    JOB_ARRIVAL = 3
    VM_BOUNDARY = 4
    SCHEDULE_TICK = 5
    GENERIC = 6
    #: Correlated-outage windows (resilience extension).  OUTAGE_START is
    #: scheduled with an explicit VM_FAIL priority so same-instant kills
    #: land before boots/arrivals/ticks; OUTAGE_END only does bookkeeping
    #: and keeps its default late ordering.
    OUTAGE_START = 7
    OUTAGE_END = 8
    #: Spot-market lifecycle (hostile-cloud extension).  VM_PREEMPT is the
    #: provider's preemption *notice* (grace window opens); VM_PREEMPT_KILL
    #: is the actual reclaim at the end of the grace window.  Both are
    #: scheduled with an explicit VM_FAIL priority so same-instant kills
    #: land before boots/arrivals/ticks, like outages.
    VM_PREEMPT = 9
    VM_PREEMPT_KILL = 10
    #: Control-plane brownout windows: while one is open, every lease call
    #: fails.  Same priority convention as outages.
    BROWNOUT_START = 11
    BROWNOUT_END = 12


@dataclass(slots=True)
class Event:
    """A single scheduled occurrence in simulated time.

    Parameters
    ----------
    time:
        Simulation timestamp (seconds).
    kind:
        The :class:`EventKind` determining same-time ordering.
    payload:
        Arbitrary data interpreted by the event consumer.
    priority:
        Same-time tie-break; defaults to ``int(kind)``.
    """

    time: float
    kind: EventKind = EventKind.GENERIC
    payload: Any = None
    priority: int = -1
    seq: int = field(default_factory=_next_seq)
    cancelled: bool = False
    #: The queue currently holding this event, if any.  Maintained by
    #: :class:`~repro.sim.kernel.EventQueue` so direct ``event.cancel()``
    #: calls can keep the queue's live-event counter exact; an event
    #: belongs to at most one queue at a time.
    owner: "EventQueue | None" = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be non-negative, got {self.time}")
        if self.priority < 0:
            self.priority = int(self.kind)

    def sort_key(self) -> tuple[float, int, int]:
        """The total order used by the event queue."""
        return (self.time, self.priority, self.seq)

    def cancel(self) -> None:
        """Mark the event as cancelled; the queue drops it lazily on pop."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()
