"""Discrete-event simulation kernel.

This subpackage is the substrate the paper's DGSim-based evaluation relies
on.  It provides a minimal, fast, dependency-free event engine:

* :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.EventKind` —
  timestamped, totally ordered simulation events.
* :class:`~repro.sim.kernel.EventQueue` — a binary-heap priority queue with
  stable tie-breaking and lazy cancellation.
* :class:`~repro.sim.kernel.Simulator` — the event loop (schedule /
  run-until / step).
* :mod:`~repro.sim.clock` — cost clocks used by the time-constrained
  portfolio selection (wall clock vs. deterministic virtual clock).
* :mod:`~repro.sim.rng` — seeded, stream-splittable random number helpers.
"""

from repro.sim.clock import CostClock, VirtualCostClock, WallCostClock
from repro.sim.events import Event, EventKind
from repro.sim.kernel import EventQueue, Simulator
from repro.sim.rng import RngFactory, make_rng

__all__ = [
    "CostClock",
    "Event",
    "EventKind",
    "EventQueue",
    "RngFactory",
    "Simulator",
    "VirtualCostClock",
    "WallCostClock",
    "make_rng",
]
