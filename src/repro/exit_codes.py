"""Process exit codes, in one place.

Every CLI entry point returns one of these constants instead of a bare
integer, so operators (and the CI smoke jobs, which assert on exact
codes) can tell *why* a process ended from the code alone:

====  =======================  ==================================================
code  name                     meaning
====  =======================  ==================================================
0     EX_OK                    success
1     EX_FAILURE               run failed (soak diverged, campaign error,
                               environment fault escaped, unreadable trace)
2     EX_USAGE                 bad arguments or configuration (unknown policy,
                               malformed fault plan, --resume without a dir)
3     EX_AUDIT_VIOLATION       strict audit aborted the run on an invariant
                               violation
4     EX_DRAINED               the scheduler service drained cleanly after
                               SIGTERM/SIGINT or an API drain request
5     EX_KILL_SWITCH           the service drained while the provisioning
                               kill switch was engaged (capacity was halted;
                               an operator must clear the switch file)
6     EX_DOCTOR                ``repro doctor`` found the environment unfit
128+n signal_exit(n)           killed by signal *n* after snapshotting
                               (e.g. 130 = SIGINT, 143 = SIGTERM)
====  =======================  ==================================================

The table is documented in README.md; keep the two in sync.
"""

from __future__ import annotations

import signal as _signal

__all__ = [
    "EX_OK",
    "EX_FAILURE",
    "EX_USAGE",
    "EX_AUDIT_VIOLATION",
    "EX_DRAINED",
    "EX_KILL_SWITCH",
    "EX_DOCTOR",
    "signal_exit",
]

EX_OK = 0
EX_FAILURE = 1
EX_USAGE = 2
EX_AUDIT_VIOLATION = 3
EX_DRAINED = 4
EX_KILL_SWITCH = 5
EX_DOCTOR = 6


def signal_exit(signum: int) -> int:
    """The conventional shell exit code for death by signal *signum*."""
    return 128 + int(_signal.Signals(signum).value)
