"""Fractional fleet allocation across top-k portfolio policies.

Generalizes the paper's per-round argmax (one winning policy drives the
whole fleet) to a weighted split: the top-k policies from Algorithm 1's
utility ranking each drive a bounded fraction of the VM fleet and queue.
``k=1`` (the default everywhere) degenerates exactly to the paper's
scheduler and is regression-pinned bit-identical.

Modules:

- :mod:`.contracts` — frozen, validated ``PolicyAllocation`` /
  ``FleetAllocation`` (weights on the simplex, per-entry bounds);
- :mod:`.allocator` — ``AllocConfig`` + ``WeightAllocator`` mapping
  utility scores to bounded weights (proportional / softmax);
- :mod:`.split` — deterministic largest-remainder apportionment of an
  integer fleet, shared with the service tier's tenant fair-share;
- :mod:`.rebalancer` — drift-threshold hysteresis against fleet
  thrashing.
"""

from .allocator import ALLOC_METHODS, AllocConfig, WeightAllocator
from .contracts import WEIGHT_SUM_TOL, FleetAllocation, PolicyAllocation
from .rebalancer import DriftRebalancer
from .split import largest_remainder

__all__ = [
    "ALLOC_METHODS",
    "AllocConfig",
    "DriftRebalancer",
    "FleetAllocation",
    "PolicyAllocation",
    "WEIGHT_SUM_TOL",
    "WeightAllocator",
    "largest_remainder",
]
