"""Validated allocation contracts: policy weights and whole-fleet splits.

The fractional-fleet extension treats portfolio policies the way a
multi-strategy trading account treats strategies: each policy receives a
bounded *weight* of the shared VM fleet, and the set of weights must be
a valid point on the simplex.  Everything here is frozen and validated
at construction so an impossible allocation (weight 1.5, min above max,
weights that do not sum to one) can never travel further than the line
that built it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["WEIGHT_SUM_TOL", "PolicyAllocation", "FleetAllocation"]

#: Tolerance on the sum-to-one invariant: weights come out of a float
#: renormalisation, so demand exactness only up to accumulated ulps.
WEIGHT_SUM_TOL = 1e-6


@dataclass(slots=True, frozen=True)
class PolicyAllocation:
    """One policy's slice of the fleet: a bounded target weight.

    Parameters
    ----------
    policy:
        The portfolio member's name (unique within a
        :class:`FleetAllocation`).
    target_weight:
        Fraction of the fleet this policy should drive, in [0, 1].
    min_weight / max_weight:
        Bounds the target must respect, both in [0, 1] with
        ``min_weight <= max_weight``.  Defaults (0, 1) impose nothing.
    """

    policy: str
    target_weight: float
    min_weight: float = 0.0
    max_weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.policy:
            raise ValueError("policy name must be non-empty")
        if not 0.0 <= self.target_weight <= 1.0:
            raise ValueError(
                f"target_weight must be in [0, 1], got {self.target_weight}"
            )
        if not 0.0 <= self.min_weight <= 1.0:
            raise ValueError(
                f"min_weight must be in [0, 1], got {self.min_weight}"
            )
        if not 0.0 <= self.max_weight <= 1.0:
            raise ValueError(
                f"max_weight must be in [0, 1], got {self.max_weight}"
            )
        if self.min_weight > self.max_weight:
            raise ValueError(
                f"min_weight {self.min_weight} must be <= max_weight "
                f"{self.max_weight}"
            )
        if self.min_weight > self.target_weight:
            raise ValueError(
                f"min_weight {self.min_weight} must be <= target_weight "
                f"{self.target_weight}"
            )
        if self.target_weight > self.max_weight:
            raise ValueError(
                f"target_weight {self.target_weight} must be <= max_weight "
                f"{self.max_weight}"
            )


@dataclass(slots=True, frozen=True)
class FleetAllocation:
    """A complete split of the fleet across policies.

    Entry order is meaningful: entry 0 is the selection winner (its
    partition is the one ``_last_policy``-style single-policy logic
    falls back to), and fleet apportionment walks entries in order.
    """

    entries: tuple[PolicyAllocation, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValueError("a fleet allocation needs at least one entry")
        names = [entry.policy for entry in self.entries]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate policy in allocation: {names}")
        total = sum(entry.target_weight for entry in self.entries)
        if abs(total - 1.0) > WEIGHT_SUM_TOL:
            raise ValueError(
                f"target weights must sum to 1 (±{WEIGHT_SUM_TOL}), "
                f"got {total!r}"
            )

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(entry.policy for entry in self.entries)

    @property
    def weights(self) -> tuple[float, ...]:
        return tuple(entry.target_weight for entry in self.entries)

    def weight_of(self, policy: str) -> float:
        for entry in self.entries:
            if entry.policy == policy:
                return entry.target_weight
        raise KeyError(policy)

    def drift_from(self, other: "FleetAllocation") -> float:
        """L∞ distance between two allocations over the union of names.

        A policy present on one side only contributes its full weight —
        entering or leaving the top-k is maximal drift for that slot.
        """
        mine = {e.policy: e.target_weight for e in self.entries}
        theirs = {e.policy: e.target_weight for e in other.entries}
        names = set(mine) | set(theirs)
        return max(abs(mine.get(n, 0.0) - theirs.get(n, 0.0)) for n in names)
