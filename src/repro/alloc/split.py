"""Deterministic largest-remainder apportionment of integer fleets.

Turning fractional weights into whole VMs is the classic apportionment
problem.  We use the largest-remainder (Hamilton) method: every slot
gets the floor of its exact quota, and the leftover units go to the
slots with the largest fractional remainders.  Ties on the remainder
are broken by a seeded permutation so the result is deterministic,
order-stable, and reproducible across runs and platforms.

Used by both the per-policy fleet partitioner (`repro.alloc`) and the
service tier's per-tenant fair-share split (`repro.service.state`).
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence

__all__ = ["largest_remainder"]


def largest_remainder(
    total: int,
    weights: Sequence[float],
    *,
    seed: int = 0,
) -> list[int]:
    """Split ``total`` integer units over ``weights``, preserving the sum.

    Guarantees, for any non-negative ``weights`` with a positive sum:

    - ``sum(result) == total`` (sum preservation);
    - ``weights[i] > weights[j]`` implies ``result[i] >= result[j]``
      (within-call monotonicity);
    - equal inputs give equal outputs (determinism) — remainder ties are
      broken by a ``random.Random(seed)`` permutation, not dict order;
    - the result is order-stable: shares follow the input positions.

    All-zero (or empty) weights fall back to an equal split with the
    same tie-break, so callers never have to special-case "nobody is
    asking".
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    n = len(weights)
    if n == 0:
        if total:
            raise ValueError("cannot split a positive total over no weights")
        return []
    if any(w < 0 for w in weights):
        raise ValueError(f"weights must be >= 0, got {list(weights)}")

    mass = float(sum(weights))
    if mass <= 0.0:
        quotas = [total / n] * n
    else:
        quotas = [total * (w / mass) for w in weights]

    shares = [math.floor(q) for q in quotas]
    leftover = total - sum(shares)

    # Seeded permutation rank as the tie-break: equal remainders resolve
    # the same way every call, independent of input ordering quirks.
    tie_rank = list(range(n))
    random.Random(seed).shuffle(tie_rank)
    order = sorted(
        range(n),
        key=lambda i: (-(quotas[i] - shares[i]), tie_rank[i]),
    )
    for i in order[:leftover]:
        shares[i] += 1
    return shares
