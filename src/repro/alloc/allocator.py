"""Score → weight allocator: utility ranking to bounded top-k weights.

Algorithm 1 hands the scheduler a ranking of policies by utility
``U = κ·(RJ/RV)^α·(1/BSD)^β`` (always positive — utilization is clamped
to [0, 1] and BSD floored at 1).  The allocator maps the top-k of that
ranking onto a :class:`~repro.alloc.contracts.FleetAllocation`:

- ``proportional`` — weight ∝ raw score.  Scores are strictly positive
  in practice; if a caller ever feeds non-positive scores we shift by
  the minimum and fall back to equal weights when the spread is zero.
- ``softmax`` — weight ∝ exp((s − s_max)/T); the temperature ``T``
  interpolates between argmax (T→0) and equal weights (T→∞).

Weights are then clamped to the configured [min, max] band and
renormalized with a one-pass proportional-to-slack redistribution.  The
band is first widened to [min(min, 1/k), max(max, 1/k)] so a feasible
point always exists; with that adjustment the single pass converges
exactly.  ``k=1`` bypasses everything and returns weight 1.0 on the
ranking winner — the paper's argmax, degenerate by construction.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from .contracts import FleetAllocation, PolicyAllocation

__all__ = ["ALLOC_METHODS", "AllocConfig", "WeightAllocator"]

ALLOC_METHODS = ("proportional", "softmax")


@dataclass(slots=True, frozen=True)
class AllocConfig:
    """Knobs for fractional fleet allocation across top-k policies.

    The engine treats ``k == 1`` (the default) as "allocation off": the
    scheduler's argmax winner drives the whole fleet, bit-identical to
    a build without this subsystem.
    """

    k: int = 1
    method: str = "proportional"
    temperature: float = 1.0
    min_weight: float = 0.0
    max_weight: float = 1.0
    rebalance_threshold: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.method not in ALLOC_METHODS:
            raise ValueError(
                f"method must be one of {ALLOC_METHODS}, got {self.method!r}"
            )
        if self.temperature <= 0.0:
            raise ValueError(
                f"temperature must be > 0, got {self.temperature}"
            )
        if not 0.0 <= self.min_weight <= 1.0:
            raise ValueError(
                f"min_weight must be in [0, 1], got {self.min_weight}"
            )
        if not 0.0 <= self.max_weight <= 1.0:
            raise ValueError(
                f"max_weight must be in [0, 1], got {self.max_weight}"
            )
        if self.max_weight <= 0.0:
            raise ValueError(
                f"max_weight must be > 0, got {self.max_weight}"
            )
        if self.min_weight > self.max_weight:
            raise ValueError(
                f"min_weight {self.min_weight} must be <= max_weight "
                f"{self.max_weight}"
            )
        if self.rebalance_threshold < 0.0:
            raise ValueError(
                f"rebalance_threshold must be >= 0, "
                f"got {self.rebalance_threshold}"
            )

    def to_dict(self) -> dict:
        return {
            "k": self.k,
            "method": self.method,
            "temperature": self.temperature,
            "min_weight": self.min_weight,
            "max_weight": self.max_weight,
            "rebalance_threshold": self.rebalance_threshold,
            "seed": self.seed,
        }


class WeightAllocator:
    """Maps a (name, score) ranking to a bounded top-k FleetAllocation."""

    def __init__(self, config: AllocConfig) -> None:
        self.config = config

    def allocate(self, ranked: Sequence[tuple[str, float]]) -> FleetAllocation:
        """Allocate over ``ranked`` (best first, as Algorithm 1 sorts it).

        The top ``min(k, len(ranked))`` entries receive weights; entry 0
        of the result is always the ranking winner.
        """
        if not ranked:
            raise ValueError("cannot allocate over an empty ranking")
        cfg = self.config
        top = list(ranked[: cfg.k])
        k_eff = len(top)
        if k_eff == 1:
            # Exact argmax degeneration: a single full-weight entry with
            # the loosest bounds, so k=1 never trips a bounds check.
            return FleetAllocation(
                entries=(PolicyAllocation(policy=top[0][0], target_weight=1.0),)
            )

        raw = self._raw_weights([score for _, score in top])
        lo, hi = self._feasible_bounds(k_eff)
        weights = _clamp_renormalize(raw, lo, hi)
        entries = tuple(
            PolicyAllocation(
                policy=name,
                target_weight=w,
                min_weight=lo,
                max_weight=hi,
            )
            for (name, _), w in zip(top, weights)
        )
        return FleetAllocation(entries=entries)

    def _raw_weights(self, scores: list[float]) -> list[float]:
        if self.config.method == "softmax":
            s_max = max(scores)
            exps = [math.exp((s - s_max) / self.config.temperature) for s in scores]
            total = sum(exps)
            return [e / total for e in exps]
        # proportional: utility scores are positive by construction, so
        # raw scores are the weights; shift only if a caller broke that.
        if min(scores) <= 0.0:
            shift = -min(scores)
            scores = [s + shift for s in scores]
        total = sum(scores)
        if total <= 0.0:
            return [1.0 / len(scores)] * len(scores)
        return [s / total for s in scores]

    def _feasible_bounds(self, k_eff: int) -> tuple[float, float]:
        """Widen the configured band so the simplex stays reachable.

        ``k_eff`` weights summing to 1 need ``min <= 1/k_eff <= max``;
        a band the user set for k=3 must not make k_eff=2 infeasible.
        """
        even = 1.0 / k_eff
        lo = min(self.config.min_weight, even)
        hi = max(self.config.max_weight, even)
        return lo, hi


def _clamp_renormalize(weights: list[float], lo: float, hi: float) -> list[float]:
    """Clamp into [lo, hi] and redistribute the imbalance within bounds.

    With feasible bounds (``lo <= 1/n <= hi``) a single
    proportional-to-slack pass lands exactly on the simplex: the excess
    (or deficit) created by clamping is at most the total slack on the
    other side, so the redistribution itself never re-violates a bound.
    """
    clamped = [min(hi, max(lo, w)) for w in weights]
    excess = sum(clamped) - 1.0
    if abs(excess) <= 1e-12:
        return clamped
    if excess > 0.0:
        # Too much mass: shave it proportionally to headroom above lo.
        slack = [w - lo for w in clamped]
        total_slack = sum(slack)
        out = [w - excess * (s / total_slack) for w, s in zip(clamped, slack)]
    else:
        # Too little mass: top it up proportionally to headroom below hi.
        slack = [hi - w for w in clamped]
        total_slack = sum(slack)
        out = [w + (-excess) * (s / total_slack) for w, s in zip(clamped, slack)]
    # Guard against float rounding nudging a weight an ulp past a bound;
    # the FleetAllocation sum tolerance absorbs the correction.
    return [min(hi, max(lo, w)) for w in out]
