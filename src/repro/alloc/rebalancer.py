"""Drift-threshold hysteresis between target and applied allocations.

Algorithm 1 re-ranks policies every selection round, and raw weights
wobble with every re-rank.  Moving VMs between partitions is not free
(queues re-slice, policies lose warm context), so the rebalancer only
adopts a new target when it diverges from the currently applied
allocation by more than ``threshold`` in L∞ — the same
drift-vs-turnover trade portfolio rebalancers make.

The first allocation, and any allocation whose *policy set* changed,
is always adopted (a partition for a policy that left the top-k cannot
be kept alive).  Both cases count as rebalances; a held round counts
as a hold.
"""

from __future__ import annotations

from .contracts import FleetAllocation

__all__ = ["DriftRebalancer"]


class DriftRebalancer:
    """Applies a FleetAllocation only when drift exceeds the threshold."""

    def __init__(self, threshold: float = 0.0) -> None:
        if threshold < 0.0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.threshold = threshold
        self.current: FleetAllocation | None = None
        self.rebalances = 0
        self.holds = 0
        self.last_drift = 0.0

    def apply(self, target: FleetAllocation) -> tuple[FleetAllocation, bool]:
        """Return ``(applied, moved)`` for this round's target.

        ``moved`` is True when the fleet adopts ``target`` (first call,
        top-k membership change, or drift strictly above the
        threshold); otherwise the previous allocation is held, so an
        unchanged target never counts as a rebalance even at
        threshold 0.
        """
        if self.current is None or set(target.names) != set(self.current.names):
            self.last_drift = (
                1.0 if self.current is None else target.drift_from(self.current)
            )
            self.current = target
            self.rebalances += 1
            return target, True
        drift = target.drift_from(self.current)
        self.last_drift = drift
        if drift > self.threshold:
            self.current = target
            self.rebalances += 1
            return target, True
        self.holds += 1
        return self.current, False

    def to_dict(self) -> dict:
        return {
            "threshold": self.threshold,
            "rebalances": self.rebalances,
            "holds": self.holds,
            "last_drift": self.last_drift,
        }
