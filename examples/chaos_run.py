"""Chaos run: the portfolio scheduler on an unreliable cloud.

The paper assumes VMs never fail (§3.1).  This example turns every fault
knob of the resilience extension on at once — exponential VM lifetimes,
transient lease rejections, partial capacity grants, boot failures,
long-tailed boot jitter, and correlated AZ-style outage windows — then
runs the same workload twice: restart-from-scratch versus periodic
checkpointing.  Every fault stream is seeded, so reruns are bit-identical.

Run:  python examples/chaos_run.py
"""

from repro import (
    CheckpointPolicy,
    DAS2_FS0,
    EngineConfig,
    FailureModel,
    FaultModel,
    RetryPolicy,
    VirtualCostClock,
    generate_trace,
    run_portfolio,
)

HOUR = 3_600.0


def chaos_config(checkpoint: CheckpointPolicy | None) -> EngineConfig:
    return EngineConfig(
        # independent exponential VM lifetimes, mean 4 h
        failures=FailureModel(mtbf_seconds=4 * HOUR, seed=11),
        # cloud-side faults: flaky control plane + one outage window every
        # ~8 h that kills 80% of the on-demand fleet for ~15 min
        faults=FaultModel(
            seed=11,
            lease_fault_rate=0.10,
            partial_grant_rate=0.10,
            boot_fail_rate=0.05,
            boot_jitter_scale=30.0,
            outage_mtbo_seconds=8 * HOUR,
            outage_duration_seconds=900.0,
            outage_kill_fraction=0.8,
        ),
        # back off on rejected lease requests instead of hammering the API
        lease_retry=RetryPolicy(),
        # a job killed more than 10 times ends FAILED instead of looping
        max_job_retries=10,
        checkpoint=checkpoint,
    )


def run(label: str, checkpoint: CheckpointPolicy | None) -> None:
    jobs = generate_trace(DAS2_FS0, duration=12 * HOUR, seed=42)
    result, _ = run_portfolio(
        jobs,
        config=chaos_config(checkpoint),
        cost_clock=VirtualCostClock(0.010),
        seed=7,
    )
    m, r9 = result.metrics, result.resilience
    print(f"--- {label} ---")
    print(f"jobs finished       : {m.jobs} "
          f"(failed: {r9.jobs_failed}, unfinished: {result.unfinished_jobs})")
    print(f"avg bounded slowdown: {m.avg_bounded_slowdown:.2f}")
    print(f"charged cost        : {m.charged_hours:.0f} VM-hours")
    print(f"utility             : {result.utility:.2f}")
    print(f"VM failures         : {r9.vm_failures} "
          f"({r9.boot_failures} during boot)")
    print(f"lease faults        : {r9.lease_rejections} rejected, "
          f"{r9.lease_retries} retried, {r9.vms_denied} VMs denied")
    print(f"outages             : {r9.outages} "
          f"({r9.outage_downtime_seconds / 60:.0f} min down)")
    print(f"work lost to kills  : {r9.wasted_cpu_seconds / HOUR:.1f} CPU-h "
          f"(checkpoints saved {r9.checkpoint_saved_cpu_seconds / HOUR:.1f})")
    print()


def main() -> None:
    run("restart from scratch", checkpoint=None)
    run("checkpoint every 15 min", CheckpointPolicy(900.0, overhead_seconds=30.0))


if __name__ == "__main__":
    main()
