"""Extend the portfolio with your own policies.

The portfolio scheduler treats policies as data: anything implementing
the ``ProvisioningPolicy`` / ``JobSelectionPolicy`` interfaces can join
the portfolio and will be selected whenever the online simulator scores
it best.  This example adds:

* ``OverProvision`` — leases 25% headroom above queued demand (slack for
  future arrivals, something no paper policy does), and
* ``ShortestJobFirst`` — the classic SJF queue order.

Run:  python examples/custom_policy.py
"""

from repro import DAS2_FS0, VirtualCostClock, generate_trace
from repro.core.scheduler import PortfolioScheduler
from repro.experiments.engine import ClusterEngine
from repro.policies.base import JobSelectionPolicy, ProvisioningPolicy, SchedContext
from repro.policies.combined import CombinedPolicy, build_portfolio
from repro.policies.vm_selection import FirstFit


class OverProvision(ProvisioningPolicy):
    """Cover queued demand plus 25% slack (capped by the provider)."""

    name = "OVR"

    def new_vms(self, ctx: SchedContext) -> int:
        demand = ctx.total_queued_procs()
        target = int(demand * 1.25 + 0.5)
        return max(0, target - ctx.available)


class ShortestJobFirst(JobSelectionPolicy):
    """Classic SJF on the runtime estimate."""

    name = "SJF"

    def priorities(self, ctx: SchedContext) -> list[float]:
        # higher priority = earlier; invert the estimate
        return [1.0 / max(t, 1.0) for t in ctx.runtimes]


def main() -> None:
    extras = [
        CombinedPolicy(OverProvision(), ShortestJobFirst(), FirstFit()),
    ]
    portfolio = build_portfolio() + extras
    print(f"portfolio size: {len(portfolio)} (60 paper policies + {len(extras)} custom)")

    jobs = generate_trace(DAS2_FS0, duration=43_200.0, seed=5)
    scheduler = PortfolioScheduler(
        portfolio=portfolio, cost_clock=VirtualCostClock(0.010), seed=7
    )
    result = ClusterEngine(jobs, scheduler).run()

    m = result.metrics
    print(f"{m.jobs} jobs: BSD {m.avg_bounded_slowdown:.2f}, "
          f"cost {m.charged_hours:.0f} VM-hours, utility {result.utility:.2f}")

    share = scheduler.reflection.invocation_ratio().get("OVR-SJF-FirstFit", 0.0)
    print(f"custom policy won {share:.1%} of the portfolio selections")


if __name__ == "__main__":
    main()
