"""Watch the portfolio scheduler adapt to a bursty workload over time.

Attaches a :class:`TimeseriesRecorder` to the engine and renders ASCII
sparklines of queue depth and fleet size across a simulated day of the
bursty DAS2-fs0 workload, plus which provisioning policies the scheduler
switched between.

Run:  python examples/fleet_dynamics.py
"""

from collections import Counter

from repro import DAS2_FS0, VirtualCostClock, generate_trace
from repro.core.scheduler import PortfolioScheduler
from repro.experiments.engine import ClusterEngine
from repro.metrics.timeseries import TimeseriesRecorder, sparkline


def main() -> None:
    jobs = generate_trace(DAS2_FS0, duration=86_400.0, seed=3)
    recorder = TimeseriesRecorder()
    scheduler = PortfolioScheduler(cost_clock=VirtualCostClock(0.010), seed=7)
    result = ClusterEngine(jobs, scheduler, observer=recorder).run()

    print(f"{len(jobs)} jobs over one simulated day "
          f"({result.portfolio_invocations} portfolio selections)\n")
    print("queue depth :", sparkline(recorder.series("queue_length")))
    print("fleet size  :", sparkline(recorder.series("fleet")))
    print("idle VMs    :", sparkline(recorder.series("idle")))
    print()
    print(f"peak queue {recorder.peak_queue()} jobs, "
          f"peak fleet {recorder.peak_fleet()} VMs, "
          f"mean idle fraction {recorder.mean_idle_fraction():.1%}, "
          f"policy switches {recorder.policy_switches()}")

    # which provisioning policy was active at the busiest vs quietest ticks?
    busy = [s for s in recorder.samples if s.queue_length >= recorder.peak_queue() // 2]
    quiet = [s for s in recorder.samples if s.queue_length <= 2]
    for label, samples in (("busy ticks", busy), ("quiet ticks", quiet)):
        mix = Counter(s.active_policy.split("-")[0] for s in samples)
        total = sum(mix.values()) or 1
        top = ", ".join(f"{k} {v / total:.0%}" for k, v in mix.most_common(3))
        print(f"provisioning during {label:<11}: {top}")


if __name__ == "__main__":
    main()
