"""Compare runtime predictors — accuracy and scheduling impact.

First scores five predictors offline on the same trace (Tsafrir-style
accuracy: mean of min/max prediction-truth ratios), then runs the
portfolio scheduler under each to show how prediction quality translates
into slowdown and cost (the paper's §6.3 question, extended to more
predictors).

Run:  python examples/predictor_study.py
"""

from repro import DAS2_FS0, VirtualCostClock, generate_trace, run_portfolio
from repro.metrics.report import format_table
from repro.predict.extra import (
    EwmaPredictor,
    GlobalMedianPredictor,
    UserMeanPredictor,
    evaluate_predictor,
)
from repro.predict.knn import KnnPredictor
from repro.predict.simple import OraclePredictor, UserEstimatePredictor


def predictors():
    return [
        OraclePredictor(),
        KnnPredictor(),
        UserMeanPredictor(),
        EwmaPredictor(alpha=0.5),
        GlobalMedianPredictor(),
        UserEstimatePredictor(),
    ]


def main() -> None:
    jobs = generate_trace(DAS2_FS0, duration=86_400.0, seed=3)
    print(f"workload: {len(jobs)} jobs, one simulated day\n")

    rows = [evaluate_predictor(p, jobs).row() for p in predictors()]
    print(format_table(rows, title="offline prediction accuracy"))
    print()

    rows = []
    for predictor in predictors():
        predictor.reset()
        result, _ = run_portfolio(
            jobs, predictor, cost_clock=VirtualCostClock(0.010), seed=7
        )
        m = result.metrics
        rows.append(
            {
                "predictor": predictor.name,
                "BSD": round(m.avg_bounded_slowdown, 2),
                "cost[VMh]": round(m.charged_hours, 1),
                "utility": round(result.utility, 2),
            }
        )
    print(format_table(rows, title="portfolio scheduling under each predictor"))


if __name__ == "__main__":
    main()
