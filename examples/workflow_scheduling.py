"""Schedule scientific workflows with the portfolio scheduler.

The paper's future work adapts portfolio scheduling to workflows; this
example runs that extension: a stream of fork-join pipelines and
bags-of-tasks on the simulated cloud, reporting per-workflow makespans
against their critical-path lower bounds.

Run:  python examples/workflow_scheduling.py
"""

from repro import VirtualCostClock
from repro.core.scheduler import PortfolioScheduler
from repro.experiments.engine import ClusterEngine
from repro.metrics.report import format_table
from repro.workload.workflows import (
    bag_of_tasks,
    fork_join_workflow,
    merge_workflows,
    random_layered_workflow,
    workflow_makespan,
)


def build_workload():
    """A morning of workflow submissions: pipelines, bags, random DAGs."""
    workflows = []
    next_id = 0
    for i in range(4):
        wf = fork_join_workflow(
            f"pipeline-{i}", submit_time=i * 1_800.0, width=8,
            stage_runtime=400.0, seed=i, first_id=next_id,
        )
        next_id += len(wf.jobs)
        workflows.append(wf)
    for i in range(3):
        wf = bag_of_tasks(
            f"bag-{i}", submit_time=900.0 + i * 2_400.0, n_tasks=20,
            runtime_mean=150.0, seed=10 + i, first_id=next_id,
        )
        next_id += len(wf.jobs)
        workflows.append(wf)
    for i in range(2):
        wf = random_layered_workflow(
            f"dag-{i}", submit_time=1_200.0 + i * 3_600.0, layers=4, width=5,
            runtime_mean=250.0, seed=20 + i, first_id=next_id,
        )
        next_id += len(wf.jobs)
        workflows.append(wf)
    return workflows


def main() -> None:
    workflows = build_workload()
    jobs, deps = merge_workflows(workflows)
    print(f"{len(workflows)} workflows, {len(jobs)} tasks total\n")

    scheduler = PortfolioScheduler(cost_clock=VirtualCostClock(0.010), seed=7)
    result = ClusterEngine(jobs, scheduler, dependencies=deps).run()
    finish = {r.job_id: r.finish_time for r in result.records}

    rows = []
    for wf in workflows:
        makespan = workflow_makespan(wf, finish)
        bound = wf.critical_path_seconds()
        rows.append(
            {
                "workflow": wf.name,
                "tasks": len(wf.jobs),
                "makespan[s]": round(makespan, 0),
                "critical path[s]": round(bound, 0),
                "stretch": round(makespan / bound, 2),
            }
        )
    print(format_table(rows, title="per-workflow makespans"))
    m = result.metrics
    print(f"\ncluster totals: cost {m.charged_hours:.0f} VM-hours, "
          f"task slowdown {m.avg_bounded_slowdown:.2f}, "
          f"utility {result.utility:.2f}")


if __name__ == "__main__":
    main()
