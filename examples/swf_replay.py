"""Replay a Standard Workload Format (SWF) trace through the scheduler.

If you have a real Parallel Workloads Archive trace (e.g. KTH-SP2.swf),
pass its path; otherwise the example writes a small synthetic SWF file
first, so the full parse → clean → replay pipeline runs out of the box:

    python examples/swf_replay.py [path/to/trace.swf]
"""

import sys
import tempfile
from pathlib import Path

from repro import (
    LPC_EGEE,
    KnnPredictor,
    generate_trace,
    parse_swf_file,
    run_portfolio,
)
from repro.sim.clock import VirtualCostClock
from repro.workload.cleaning import clean_jobs
from repro.workload.swf import write_swf


def demo_swf_file() -> Path:
    """Write a synthetic 6-hour trace as SWF (stand-in for a PWA file)."""
    jobs = generate_trace(LPC_EGEE, duration=6 * 3_600.0, seed=11)
    path = Path(tempfile.gettempdir()) / "repro_demo_trace.swf"
    with open(path, "w", encoding="utf-8") as fh:
        write_swf(jobs, fh, header="synthetic LPC-EGEE-like demo trace\nMaxProcs: 140")
    return path


def main() -> None:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else demo_swf_file()
    print(f"parsing {path} ...")
    raw = parse_swf_file(path)

    # The paper's cleaning rules (§5.2): drop zero-runtime/zero-processor
    # jobs, jobs larger than the source system, and jobs over 64 procs.
    jobs, report = clean_jobs(raw, system_procs=140, max_procs=64)
    print(
        f"cleaned: kept {report.kept}/{report.total} jobs "
        f"({report.kept_fraction:.1%}); dropped "
        f"{report.dropped_zero_runtime} zero-runtime, "
        f"{report.dropped_zero_procs} zero-proc, "
        f"{report.dropped_oversized} oversized, "
        f"{report.dropped_over_filter} over the 64-proc filter"
    )

    # Replay with the k-NN runtime predictor (the scheduler does not get
    # to see actual runtimes — the realistic regime of the paper's Fig. 7).
    result, _ = run_portfolio(
        jobs, KnnPredictor(), cost_clock=VirtualCostClock(0.010), seed=7
    )
    m = result.metrics
    print(f"replayed {m.jobs} jobs: BSD {m.avg_bounded_slowdown:.2f}, "
          f"cost {m.charged_hours:.0f} VM-hours, utility {result.utility:.2f}")


if __name__ == "__main__":
    main()
