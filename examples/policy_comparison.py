"""Compare individual scheduling policies against the portfolio on a
bursty workload — a miniature of the paper's Figure 4.

The bursty DAS2-fs0 model is where the paper finds the largest portfolio
gains: no single provisioning policy handles both the quiet stretches
(cheap policies win) and the submission bursts (aggressive policies win).

Run:  python examples/policy_comparison.py
"""

from repro import (
    DAS2_FS0,
    VirtualCostClock,
    generate_trace,
    policy_by_name,
    run_fixed,
    run_portfolio,
)
from repro.metrics.report import format_table

#: One representative policy per provisioning cluster (the full grid is
#: what benchmarks/test_fig4.py runs).
CANDIDATES = (
    "ODA-UNICEF-FirstFit",
    "ODB-UNICEF-FirstFit",
    "ODE-UNICEF-BestFit",
    "ODM-UNICEF-BestFit",
    "ODX-UNICEF-FirstFit",
)


def main() -> None:
    jobs = generate_trace(DAS2_FS0, duration=86_400.0, seed=3)
    print(f"workload: {len(jobs)} jobs over one simulated day (bursty)\n")

    rows = []
    for name in CANDIDATES:
        result = run_fixed(jobs, policy_by_name(name))
        m = result.metrics
        rows.append(
            {
                "scheduler": name,
                "BSD": round(m.avg_bounded_slowdown, 2),
                "cost[VMh]": round(m.charged_hours, 1),
                "utility": round(result.utility, 2),
            }
        )

    result, _ = run_portfolio(jobs, cost_clock=VirtualCostClock(0.010), seed=7)
    m = result.metrics
    rows.append(
        {
            "scheduler": "PORTFOLIO (60 policies)",
            "BSD": round(m.avg_bounded_slowdown, 2),
            "cost[VMh]": round(m.charged_hours, 1),
            "utility": round(result.utility, 2),
        }
    )
    rows.sort(key=lambda r: -float(r["utility"]))
    print(format_table(rows, title="policy comparison (higher utility is better)"))


if __name__ == "__main__":
    main()
