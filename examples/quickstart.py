"""Quickstart: run the portfolio scheduler on a synthetic workload.

Generates six hours of a KTH-SP2-like workload, executes it on a
simulated EC2-style cloud under the portfolio scheduler, and prints the
metrics the paper reports (bounded slowdown, charged cost, utility).

Run:  python examples/quickstart.py
"""

from repro import (
    KTH_SP2,
    VirtualCostClock,
    generate_trace,
    run_portfolio,
)


def main() -> None:
    # 1. A workload: six hours of the stable KTH-SP2 trace model.
    jobs = generate_trace(KTH_SP2, duration=6 * 3_600.0, seed=42)
    print(f"generated {len(jobs)} jobs "
          f"(max {max(j.procs for j in jobs)} processors each)")

    # 2. Run the portfolio scheduler: 60 policies, online simulation,
    #    Algorithm 1 with the paper's Δ = 200 ms / 10 ms-per-policy budget.
    result, scheduler = run_portfolio(
        jobs,
        time_constraint=0.2,
        cost_clock=VirtualCostClock(0.010),
        seed=7,
    )

    # 3. The numbers the paper's figures plot.
    m = result.metrics
    print(f"jobs finished      : {m.jobs} (unfinished: {result.unfinished_jobs})")
    print(f"avg bounded slowdown: {m.avg_bounded_slowdown:.2f}")
    print(f"charged cost       : {m.charged_hours:.0f} VM-hours")
    print(f"utilization RJ/RV  : {m.utilization:.2f}")
    print(f"utility            : {result.utility:.2f}")
    print(f"portfolio selections: {result.portfolio_invocations}")

    # 4. Which policies did the scheduler actually use?
    ratios = scheduler.reflection.grouped_ratio(1)
    print("provisioning mix   :",
          ", ".join(f"{k} {v:.0%}" for k, v in sorted(ratios.items(), key=lambda kv: -kv[1])))


if __name__ == "__main__":
    main()
