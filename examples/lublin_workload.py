"""Generate a new workload with the Lublin-Feitelson-style model and
schedule it.

The four built-in trace models imitate the paper's specific systems;
:class:`LublinModel` generates *new* workloads with the canonical
structure of rigid parallel jobs (power-of-two sizes, hyper-gamma
runtimes whose long-job share grows with width, diurnal gamma arrivals).

Run:  python examples/lublin_workload.py
"""

from repro import LublinModel, VirtualCostClock, generate_lublin_trace, run_portfolio
from repro.workload.stats import summarize_trace


def main() -> None:
    model = LublinModel(
        max_procs=64,
        serial_prob=0.3,
        interarrival_scale=900.0,  # ~1 job / 12 min on average
    )
    jobs = generate_lublin_trace(model, duration=86_400.0, seed=17)
    summary = summarize_trace("lublin", jobs, model.max_procs, span=86_400.0)
    print(
        f"generated {summary.jobs} jobs: mean runtime {summary.mean_runtime:.0f} s, "
        f"mean width {summary.mean_procs:.1f} procs, "
        f"offered load {summary.load:.0%} of a {model.max_procs}-VM ceiling"
    )

    result, scheduler = run_portfolio(
        jobs, cost_clock=VirtualCostClock(0.010), seed=7
    )
    m = result.metrics
    print(
        f"portfolio: BSD {m.avg_bounded_slowdown:.2f}, "
        f"cost {m.charged_hours:.0f} VM-hours, utility {result.utility:.2f}"
    )
    mix = scheduler.reflection.grouped_ratio(1)
    print("provisioning mix:",
          ", ".join(f"{k} {v:.0%}" for k, v in sorted(mix.items(), key=lambda kv: -kv[1])))


if __name__ == "__main__":
    main()
